// Package catalog defines tables, secondary indexes, and the catalog that
// owns them. It gives the executor and optimizer a uniform view of storage:
// every table supports a full scan in page order (grouped page access) and
// point fetches by RID; every secondary index supports range seeks that
// yield RIDs.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"pagefeedback/internal/btree"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/heap"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

// StorageKind says how a table's rows are physically arranged.
type StorageKind uint8

// Table storage kinds.
const (
	// KindHeap stores rows in arrival order in a heap file.
	KindHeap StorageKind = iota
	// KindClustered stores rows in clustering-key order in B+tree leaves.
	KindClustered
)

// Table is one base table.
type Table struct {
	Name        string
	Schema      *tuple.Schema
	Kind        StorageKind
	ClusterCols []string // clustering key columns (KindClustered only)

	heapFile  *heap.File
	clustered *btree.Tree
	indexes   []*Index
	version   int64 // bumped by every mutation; see Version
}

// Version returns the table's modification counter. Every Insert, Delete,
// and BulkLoad advances it; consumers of execution feedback compare the
// version a page count was observed at against the current one to decide
// whether the observation is still trustworthy.
func (t *Table) Version() int64 { return t.version }

// Index is one secondary (non-clustered) index. Entries are
// EncodeKey(column values..., rid) with an empty value, so duplicate column
// values stay unique and the RID is recovered from the key's last value.
type Index struct {
	Name  string
	Table *Table
	Cols  []string
	tree  *btree.Tree
}

// Catalog owns all tables of a database instance.
type Catalog struct {
	pool   *storage.BufferPool
	tables map[string]*Table
}

// New creates an empty catalog over pool.
func New(pool *storage.BufferPool) *Catalog {
	return &Catalog{pool: pool, tables: make(map[string]*Table)}
}

// Pool returns the buffer pool backing the catalog.
func (c *Catalog) Pool() *storage.BufferPool { return c.pool }

// Table looks up a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CreateHeapTable creates an empty heap table.
func (c *Catalog) CreateHeapTable(name string, schema *tuple.Schema) (*Table, error) {
	if _, dup := c.Table(name); dup {
		return nil, fmt.Errorf("catalog: table %q exists", name)
	}
	hf, err := heap.Create(c.pool)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Schema: schema, Kind: KindHeap, heapFile: hf}
	c.tables[strings.ToLower(name)] = t
	return t, nil
}

// CreateClusteredTable creates an empty clustered table keyed on clusterCols,
// which must exist in the schema and form a unique key of the data loaded.
func (c *Catalog) CreateClusteredTable(name string, schema *tuple.Schema, clusterCols []string) (*Table, error) {
	if _, dup := c.Table(name); dup {
		return nil, fmt.Errorf("catalog: table %q exists", name)
	}
	for _, col := range clusterCols {
		if _, ok := schema.Ordinal(col); !ok {
			return nil, fmt.Errorf("catalog: clustering column %q not in schema", col)
		}
	}
	tr, err := btree.Create(c.pool)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Schema: schema, Kind: KindClustered, ClusterCols: clusterCols, clustered: tr}
	c.tables[strings.ToLower(name)] = t
	return t, nil
}

// clusterKey encodes the clustering-key values of row.
func (t *Table) clusterKey(row tuple.Row) []byte {
	var key []byte
	for _, col := range t.ClusterCols {
		key = tuple.AppendKey(key, row[t.Schema.MustOrdinal(col)])
	}
	return key
}

// Insert adds one row and returns its RID. For clustered tables prefer
// BulkLoad: incremental inserts can split leaves, moving earlier rows and
// invalidating their RIDs (and any secondary index built on them).
func (t *Table) Insert(row tuple.Row) (storage.RID, error) {
	enc, err := tuple.Encode(nil, t.Schema, row)
	if err != nil {
		return storage.RID{}, err
	}
	t.version++
	switch t.Kind {
	case KindHeap:
		return t.heapFile.Insert(enc)
	case KindClustered:
		return t.clustered.Insert(t.clusterKey(row), enc)
	default:
		return storage.RID{}, fmt.Errorf("catalog: bad storage kind %d", t.Kind)
	}
}

// BulkLoad loads rows in one pass and returns their RIDs in input order.
// Heap tables keep arrival order. Clustered tables require rows already
// sorted by the clustering key (strictly: the key must be unique), and pack
// leaves densely so RIDs are stable afterward.
func (t *Table) BulkLoad(rows []tuple.Row) ([]storage.RID, error) {
	t.version++
	switch t.Kind {
	case KindHeap:
		rids := make([]storage.RID, len(rows))
		for i, row := range rows {
			enc, err := tuple.Encode(nil, t.Schema, row)
			if err != nil {
				return nil, err
			}
			rid, err := t.heapFile.Insert(enc)
			if err != nil {
				return nil, err
			}
			rids[i] = rid
		}
		return rids, nil
	case KindClustered:
		entries := make([]btree.Entry, len(rows))
		for i, row := range rows {
			enc, err := tuple.Encode(nil, t.Schema, row)
			if err != nil {
				return nil, err
			}
			entries[i] = btree.Entry{Key: t.clusterKey(row), Value: enc}
		}
		res, err := t.clustered.BulkLoad(entries, 1.0)
		if err != nil {
			return nil, err
		}
		return res.RIDs, nil
	default:
		return nil, fmt.Errorf("catalog: bad storage kind %d", t.Kind)
	}
}

// NumRows returns the number of rows in the table.
func (t *Table) NumRows() int64 {
	if t.Kind == KindHeap {
		return t.heapFile.NumRows()
	}
	return t.clustered.Entries()
}

// NumPages returns the number of data pages (heap pages or clustered-index
// leaf pages) — the P of the paper's cost formulas and Table I.
func (t *Table) NumPages() int64 {
	if t.Kind == KindHeap {
		return int64(t.heapFile.NumPages())
	}
	return t.clustered.LeafPages()
}

// ClusterHeight returns the clustered B+tree height (0 for heaps), for
// costing the descent of a clustered range seek.
func (t *Table) ClusterHeight() int {
	if t.Kind != KindClustered {
		return 0
	}
	return t.clustered.Height()
}

// FetchRow reads the row at rid. This is the Fetch the paper's access-method
// costing is about: each distinct page touched is a logical (and on a cold
// cache, physical random) I/O.
func (t *Table) FetchRow(rid storage.RID) (tuple.Row, error) {
	var enc []byte
	var err error
	if t.Kind == KindHeap {
		enc, err = t.heapFile.Get(rid)
	} else {
		_, enc, err = t.clustered.Get(rid)
	}
	if err != nil {
		return nil, err
	}
	return tuple.Decode(t.Schema, enc)
}

// FetchRowInto reads the row at rid, decoding into row's backing array when
// it has capacity, and returns the (possibly grown) row. The decode happens
// while the data page is pinned, so no intermediate copy of the encoded row
// is made. Rows fetched this way are valid until the next FetchRowInto with
// the same destination.
func (t *Table) FetchRowInto(dst tuple.Row, rid storage.RID) (tuple.Row, error) {
	out := dst[:0]
	decode := func(enc []byte) error {
		vals, err := tuple.DecodeAppend(out, t.Schema, enc)
		out = vals
		return err
	}
	var err error
	if t.Kind == KindHeap {
		err = t.heapFile.View(rid, decode)
	} else {
		err = t.clustered.View(rid, decode)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FetchRowAppend reads the row at rid and appends its decoded values to
// arena, returning the grown arena. Unlike FetchRowInto, the destination is
// shared by many rows: batch operators accumulate a batch's worth of fetches
// into one reused arena with no copy per row, building row views over it
// once it stops growing. The decode still happens under the data page's pin.
func (t *Table) FetchRowAppend(arena []tuple.Value, rid storage.RID) ([]tuple.Value, error) {
	out := tuple.Row(arena)
	decode := func(enc []byte) error {
		vals, err := tuple.DecodeAppend(out, t.Schema, enc)
		out = vals
		return err
	}
	var err error
	if t.Kind == KindHeap {
		err = t.heapFile.View(rid, decode)
	} else {
		err = t.clustered.View(rid, decode)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Indexes returns the table's secondary indexes.
func (t *Table) Indexes() []*Index { return t.indexes }

// IndexByName finds a secondary index by name (case-insensitive).
func (t *Table) IndexByName(name string) (*Index, bool) {
	for _, ix := range t.indexes {
		if strings.EqualFold(ix.Name, name) {
			return ix, true
		}
	}
	return nil, false
}

// RowBatch holds every row of one data page, decoded into a flat value
// arena that is reused across pages: a steady-state scan allocates O(pages),
// not O(rows). Rows[i] is a view into the arena valid only until the next
// NextPage call on the same batch.
type RowBatch struct {
	PID  storage.PageID
	RIDs []storage.RID
	Rows []tuple.Row
	vals []tuple.Value // flat arena backing Rows

	// finish memo: a row view depends only on the arena's backing array,
	// the column count, and the row index, so views built for one page are
	// reused verbatim for the next as long as the arena has not moved.
	arena0    *tuple.Value // first element of the arena the views were built over
	rowsBuilt int          // number of views built over arena0
	rowsNcols int
}

// Len returns the number of rows in the batch.
func (b *RowBatch) Len() int { return len(b.RIDs) }

func (b *RowBatch) reset() {
	b.RIDs = b.RIDs[:0]
	b.Rows = b.Rows[:0]
	b.vals = b.vals[:0]
}

// add decodes one encoded row into the arena. Row views are built in finish,
// after the arena has stopped growing (appends may move it).
func (b *RowBatch) add(s *tuple.Schema, rid storage.RID, enc []byte) error {
	vals, err := tuple.DecodeAppend(b.vals, s, enc)
	if err != nil {
		return err
	}
	b.vals = vals
	b.RIDs = append(b.RIDs, rid)
	return nil
}

// finish materializes the per-row views over the settled arena.
func (b *RowBatch) finish(ncols int) {
	n := len(b.RIDs)
	if n == 0 {
		return
	}
	if ncols > 0 && b.rowsNcols == ncols && b.arena0 == &b.vals[0] && n <= b.rowsBuilt {
		b.Rows = b.Rows[:n]
		return
	}
	b.Rows = b.Rows[:0]
	for i := 0; i < n; i++ {
		b.Rows = append(b.Rows, tuple.Row(b.vals[i*ncols:(i+1)*ncols:(i+1)*ncols]))
	}
	if ncols > 0 {
		b.arena0 = &b.vals[0]
		b.rowsBuilt = n
		b.rowsNcols = ncols
	}
}

// RowIter walks a table's rows in physical page order, either row at a time
// (Next) or page at a time (NextPage). Do not mix the two styles on one
// iterator.
type RowIter struct {
	table *Table
	hit   *heap.Iterator
	cur   *btree.Cursor
	hi    []byte // exclusive clustered-key upper bound, nil = none
	row   tuple.Row
	rid   storage.RID
	err   error

	pscan *heap.PageScanner // lazily created by NextPage on heap tables
	done  bool              // NextPage hit the hi bound
}

// ScanAll returns an iterator over all rows in page order. It has the
// grouped page access property: pages are visited exactly once, in
// ascending PID order for heaps and leaf-chain order for clustered tables.
func (t *Table) ScanAll() (*RowIter, error) {
	it := &RowIter{table: t}
	if t.Kind == KindHeap {
		it.hit = t.heapFile.Scan()
		return it, nil
	}
	cur, err := t.clustered.SeekFirst()
	if err != nil {
		return nil, err
	}
	it.cur = cur
	return it, nil
}

// ScanRange returns an iterator over the clustered-key range [r.Lo, r.Hi),
// in key (and hence page) order — the clustered index range seek access
// path. Only clustered tables support it.
func (t *Table) ScanRange(r expr.KeyRange) (*RowIter, error) {
	if t.Kind != KindClustered {
		return nil, fmt.Errorf("catalog: range scan on non-clustered table %s", t.Name)
	}
	cur, err := t.clustered.SeekGE(r.Lo)
	if err != nil {
		return nil, err
	}
	return &RowIter{table: t, cur: cur, hi: r.Hi}, nil
}

// ScanPart is one partition of a partitioned full scan: a page-at-a-time
// iterator over a contiguous page range, plus the pages it will visit in
// visit order so workers can hand them to the buffer-pool prefetcher.
type ScanPart struct {
	Iter  *RowIter
	File  storage.FileID
	Pages []storage.PageID
}

// ScanPartitions splits a full scan into at most n page-disjoint contiguous
// partitions, each preserving grouped page access within itself: heap files
// split into PID ranges, clustered tables into leaf-chain ranges (located
// via the internal levels only — no data page is read here). Fewer than n
// partitions are returned when the table has fewer pages. The iterators
// support only NextPage; each must be closed by its consumer.
func (t *Table) ScanPartitions(n int) ([]ScanPart, error) {
	if n < 1 {
		n = 1
	}
	if t.Kind == KindHeap {
		total := t.heapFile.NumPages()
		if n > total {
			n = total
		}
		parts := make([]ScanPart, 0, n)
		for i := 0; i < n; i++ {
			lo := storage.PageID(total * i / n)
			hi := storage.PageID(total * (i + 1) / n)
			if lo == hi {
				continue
			}
			pages := make([]storage.PageID, 0, hi-lo)
			for pid := lo; pid < hi; pid++ {
				pages = append(pages, pid)
			}
			parts = append(parts, ScanPart{
				Iter:  &RowIter{table: t, pscan: t.heapFile.ScanPages().Range(lo, hi)},
				File:  t.heapFile.FileID(),
				Pages: pages,
			})
		}
		return parts, nil
	}
	leaves, err := t.clustered.LeafStarts()
	if err != nil {
		return nil, err
	}
	total := len(leaves)
	if n > total {
		n = total
	}
	parts := make([]ScanPart, 0, n)
	for i := 0; i < n; i++ {
		chunk := leaves[total*i/n : total*(i+1)/n]
		if len(chunk) == 0 {
			continue
		}
		cur, err := t.clustered.CursorAtLeaf(chunk[0], len(chunk))
		if err != nil {
			for _, p := range parts {
				p.Iter.Close()
			}
			return nil, err
		}
		parts = append(parts, ScanPart{
			Iter:  &RowIter{table: t, cur: cur},
			File:  t.clustered.File(),
			Pages: chunk,
		})
	}
	return parts, nil
}

// Next advances to the next row; false at the end or on error (check Err).
func (it *RowIter) Next() bool {
	if it.err != nil {
		return false
	}
	if it.hit != nil {
		if !it.hit.Next() {
			it.err = it.hit.Err()
			return false
		}
		it.rid = it.hit.RID()
		it.row, it.err = tuple.Decode(it.table.Schema, it.hit.RowBytes())
		return it.err == nil
	}
	if !it.cur.Next() {
		it.err = it.cur.Err()
		return false
	}
	if it.hi != nil && string(it.cur.Key()) >= string(it.hi) {
		return false
	}
	it.rid = it.cur.RID()
	it.row, it.err = tuple.Decode(it.table.Schema, it.cur.Value())
	return it.err == nil
}

// NextPage fills b with every row of the next data page (heap page or
// clustered leaf), pinning the page exactly once. It preserves grouped page
// access: each page is visited once, in physical order, and for range scans
// rows beyond the upper bound are excluded. Returns false when the scan is
// exhausted or on error (check Err); b is valid until the next NextPage.
func (it *RowIter) NextPage(b *RowBatch) bool {
	if it.err != nil || it.done {
		return false
	}
	b.reset()
	ncols := it.table.Schema.NumColumns()
	if it.table.Kind == KindHeap {
		if it.pscan == nil {
			it.pscan = it.table.heapFile.ScanPages()
		}
		ok := it.pscan.NextPage(func(rid storage.RID, cell []byte) error {
			b.PID = rid.Page
			return b.add(it.table.Schema, rid, cell)
		})
		if it.err = it.pscan.Err(); it.err != nil || !ok {
			return false
		}
		b.finish(ncols)
		return true
	}
	it.cur.NextLeaf(func(key, val []byte, rid storage.RID) bool {
		if it.hi != nil && string(key) >= string(it.hi) {
			it.done = true
			return false
		}
		b.PID = rid.Page
		if err := b.add(it.table.Schema, rid, val); err != nil {
			it.err = err
			return false
		}
		return true
	})
	if it.err == nil {
		it.err = it.cur.Err()
	}
	if it.err != nil {
		return false
	}
	if b.Len() == 0 {
		return false
	}
	b.finish(ncols)
	return true
}

// NextPageFiltered is NextPage for consumers that can judge a row from its
// encoded bytes (late materialization): keep decides each cell, only
// accepted cells are decoded into b, and the returned total counts every
// cell of the page — the caller's CPU accounting charges whole pages
// exactly as the decoding path does. keep must accept cells it cannot
// interpret, so corruption still surfaces as a decode error.
func (it *RowIter) NextPageFiltered(b *RowBatch, keep func(enc []byte) bool) (int, bool) {
	if it.err != nil || it.done {
		return 0, false
	}
	b.reset()
	total := 0
	ncols := it.table.Schema.NumColumns()
	if it.table.Kind == KindHeap {
		if it.pscan == nil {
			it.pscan = it.table.heapFile.ScanPages()
		}
		ok := it.pscan.NextPage(func(rid storage.RID, cell []byte) error {
			b.PID = rid.Page
			total++
			if !keep(cell) {
				return nil
			}
			return b.add(it.table.Schema, rid, cell)
		})
		if it.err = it.pscan.Err(); it.err != nil || !ok {
			return 0, false
		}
		b.finish(ncols)
		return total, true
	}
	it.cur.NextLeaf(func(key, val []byte, rid storage.RID) bool {
		if it.hi != nil && string(key) >= string(it.hi) {
			it.done = true
			return false
		}
		b.PID = rid.Page
		total++
		if !keep(val) {
			return true
		}
		if err := b.add(it.table.Schema, rid, val); err != nil {
			it.err = err
			return false
		}
		return true
	})
	if it.err == nil {
		it.err = it.cur.Err()
	}
	if it.err != nil {
		return 0, false
	}
	if total == 0 {
		return 0, false
	}
	b.finish(ncols)
	return total, true
}

// Row returns the current row.
func (it *RowIter) Row() tuple.Row { return it.row }

// RID returns the current row's identifier.
func (it *RowIter) RID() storage.RID { return it.rid }

// Err returns the first error encountered.
func (it *RowIter) Err() error { return it.err }

// Close releases resources; safe to call multiple times.
func (it *RowIter) Close() {
	if it.hit != nil {
		it.hit.Close()
	}
	if it.cur != nil {
		it.cur.Close()
	}
}

// CreateIndex builds a secondary index over cols by scanning the table.
// The index stores only its key columns (plus the RID), so it covers a
// query exactly when every referenced column is among cols.
func (c *Catalog) CreateIndex(name string, table *Table, cols []string) (*Index, error) {
	if _, dup := table.IndexByName(name); dup {
		return nil, fmt.Errorf("catalog: index %q exists on %s", name, table.Name)
	}
	ords := make([]int, len(cols))
	for i, col := range cols {
		o, ok := table.Schema.Ordinal(col)
		if !ok {
			return nil, fmt.Errorf("catalog: no column %q in %s", col, table.Name)
		}
		ords[i] = o
	}
	it, err := table.ScanAll()
	if err != nil {
		return nil, err
	}
	var entries []btree.Entry
	for it.Next() {
		row := it.Row()
		var key []byte
		for _, o := range ords {
			key = tuple.AppendKey(key, row[o])
		}
		key = tuple.AppendKey(key, tuple.Int64(it.RID().AsInt64()))
		entries = append(entries, btree.Entry{Key: key})
	}
	it.Close()
	if err := it.Err(); err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool {
		return string(entries[i].Key) < string(entries[j].Key)
	})
	tr, err := btree.Create(c.pool)
	if err != nil {
		return nil, err
	}
	if _, err := tr.BulkLoad(entries, 1.0); err != nil {
		return nil, err
	}
	ix := &Index{Name: name, Table: table, Cols: cols, tree: tr}
	table.indexes = append(table.indexes, ix)
	return ix, nil
}

// Covers reports whether the index key contains every column in need.
func (ix *Index) Covers(need []string) bool {
	for _, n := range need {
		found := false
		for _, c := range ix.Cols {
			if strings.EqualFold(c, n) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// LeafPages returns the number of index leaf pages (for index I/O costing).
func (ix *Index) LeafPages() int64 { return ix.tree.LeafPages() }

// Height returns the index tree height.
func (ix *Index) Height() int { return ix.tree.Height() }

// EntryIter iterates index entries within one key range. The values exposed
// by Values are decoded into a buffer reused across entries: they are valid
// only until the next call to Next.
type EntryIter struct {
	ix     *Index
	cur    *btree.Cursor
	hi     []byte
	vals   []tuple.Value
	buf    []tuple.Value // reused decode buffer backing vals
	rid    storage.RID
	err    error
	nCols  int
	closed bool
}

// SeekRange opens an iterator over entries in [r.Lo, r.Hi).
func (ix *Index) SeekRange(r expr.KeyRange) (*EntryIter, error) {
	cur, err := ix.tree.SeekGE(r.Lo)
	if err != nil {
		return nil, err
	}
	return &EntryIter{ix: ix, cur: cur, hi: r.Hi, nCols: len(ix.Cols)}, nil
}

// Next advances to the next entry in range.
func (it *EntryIter) Next() bool {
	if it.err != nil || it.closed {
		return false
	}
	if !it.cur.Next() {
		it.err = it.cur.Err()
		return false
	}
	key := it.cur.Key()
	if it.hi != nil && string(key) >= string(it.hi) {
		return false
	}
	vals, err := tuple.DecodeKeyAppend(it.buf[:0], key)
	if err != nil {
		it.err = err
		return false
	}
	it.buf = vals
	if len(vals) != it.nCols+1 {
		it.err = fmt.Errorf("catalog: index %s entry has %d values, want %d", it.ix.Name, len(vals), it.nCols+1)
		return false
	}
	it.vals = vals[:it.nCols]
	it.rid = storage.RIDFromInt64(vals[it.nCols].Int)
	// Re-tag date columns (key codec decodes ints generically).
	for i, col := range it.ix.Cols {
		if o, ok := it.ix.Table.Schema.Ordinal(col); ok {
			if it.ix.Table.Schema.Column(o).Kind == tuple.KindDate && it.vals[i].Kind == tuple.KindInt {
				it.vals[i].Kind = tuple.KindDate
			}
		}
	}
	return true
}

// Values returns the current entry's key column values.
func (it *EntryIter) Values() []tuple.Value { return it.vals }

// RID returns the current entry's row identifier.
func (it *EntryIter) RID() storage.RID { return it.rid }

// LeafPage returns the index leaf page holding the current entry, letting
// callers act at leaf granularity (e.g. poll cancellation once per leaf).
func (it *EntryIter) LeafPage() storage.PageID { return it.cur.RID().Page }

// Err returns the first error encountered.
func (it *EntryIter) Err() error { return it.err }

// Close releases the iterator; safe to call multiple times.
func (it *EntryIter) Close() {
	if !it.closed {
		it.cur.Close()
		it.closed = true
	}
}
