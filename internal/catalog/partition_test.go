package catalog

import (
	"testing"

	"pagefeedback/internal/storage"
)

// collectPartitions drains every partition page-at-a-time and returns all
// row ids plus the set of PIDs each partition visited.
func collectPartitions(t *testing.T, parts []ScanPart) (ids []int64, pidSets [][]storage.PageID) {
	t.Helper()
	for _, part := range parts {
		var pids []storage.PageID
		var b RowBatch
		for part.Iter.NextPage(&b) {
			pids = append(pids, b.PID)
			for _, row := range b.Rows {
				ids = append(ids, row[0].Int)
			}
		}
		if err := part.Iter.Err(); err != nil {
			t.Fatal(err)
		}
		part.Iter.Close()
		pidSets = append(pidSets, pids)
	}
	return ids, pidSets
}

func checkPartitionCoverage(t *testing.T, tab *Table, nrows int) {
	t.Helper()
	for _, n := range []int{1, 2, 3, 4, 7, 64} {
		parts, err := tab.ScanPartitions(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) > n {
			t.Fatalf("ScanPartitions(%d) returned %d parts", n, len(parts))
		}
		ids, pidSets := collectPartitions(t, parts)
		if len(ids) != nrows {
			t.Fatalf("n=%d: %d rows across partitions, want %d", n, len(ids), nrows)
		}
		seenID := make(map[int64]bool, nrows)
		for _, id := range ids {
			if seenID[id] {
				t.Fatalf("n=%d: row %d visited twice", n, id)
			}
			seenID[id] = true
		}
		seenPID := make(map[storage.PageID]bool)
		for pi, pids := range pidSets {
			if declared := parts[pi].Pages; len(declared) > 0 {
				inDeclared := make(map[storage.PageID]bool, len(declared))
				for _, p := range declared {
					inDeclared[p] = true
				}
				for _, p := range pids {
					if !inDeclared[p] {
						t.Fatalf("n=%d part %d: visited page %d outside declared pages", n, pi, p)
					}
				}
			}
			for _, p := range pids {
				if seenPID[p] {
					t.Fatalf("n=%d: page %d visited by two partitions", n, p)
				}
				seenPID[p] = true
			}
		}
	}
}

func TestScanPartitionsHeap(t *testing.T) {
	c := newTestCatalog()
	tab, err := c.CreateHeapTable("h", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	const nrows = 5000
	if _, err := tab.BulkLoad(salesRows(nrows)); err != nil {
		t.Fatal(err)
	}
	checkPartitionCoverage(t, tab, nrows)
}

func TestScanPartitionsClustered(t *testing.T) {
	c := newTestCatalog()
	tab, err := c.CreateClusteredTable("cl", salesSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	const nrows = 5000
	if _, err := tab.BulkLoad(salesRows(nrows)); err != nil {
		t.Fatal(err)
	}
	if tab.ClusterHeight() < 2 {
		t.Fatalf("test table too small to exercise leaf split (height %d)", tab.ClusterHeight())
	}
	checkPartitionCoverage(t, tab, nrows)
}

func TestScanPartitionsClusteredGrownByInserts(t *testing.T) {
	// Leaf chains produced by incremental inserts (splits, not bulk load)
	// must still partition into disjoint full coverage.
	c := newTestCatalog()
	tab, err := c.CreateClusteredTable("g", salesSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	const nrows = 2000
	rows := salesRows(nrows)
	// Insert in a shuffled-ish but deterministic order to force splits.
	for stride := 0; stride < 4; stride++ {
		for i := stride; i < nrows; i += 4 {
			if _, err := tab.Insert(rows[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	checkPartitionCoverage(t, tab, nrows)
}

func TestScanPartitionsMatchSerialOrder(t *testing.T) {
	c := newTestCatalog()
	tab, err := c.CreateClusteredTable("o", salesSchema(), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.BulkLoad(salesRows(3000)); err != nil {
		t.Fatal(err)
	}
	serialIt, err := tab.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	var serial []int64
	var b RowBatch
	for serialIt.NextPage(&b) {
		for _, row := range b.Rows {
			serial = append(serial, row[0].Int)
		}
	}
	serialIt.Close()
	parts, err := tab.ScanPartitions(4)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := collectPartitions(t, parts)
	if len(ids) != len(serial) {
		t.Fatalf("partitioned %d rows, serial %d", len(ids), len(serial))
	}
	// Concatenating partitions in order must reproduce the serial order
	// exactly (contiguous split).
	for i := range ids {
		if ids[i] != serial[i] {
			t.Fatalf("row %d: partitioned id %d, serial id %d", i, ids[i], serial[i])
		}
	}
}
