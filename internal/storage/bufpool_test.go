package storage

import (
	"fmt"
	"testing"
)

func newPoolForTest(capacity int) (*BufferPool, FileID) {
	d := NewDiskManager(testModel())
	bp := NewBufferPool(d, capacity)
	return bp, d.CreateFile()
}

func TestBufferPoolNewPageAndFetch(t *testing.T) {
	bp, f := newPoolForTest(8)
	pp, err := bp.NewPage(f, PageTypeHeap)
	if err != nil {
		t.Fatal(err)
	}
	pp.Page.InsertCell([]byte("payload"))
	pid := pp.ID
	pp.Unpin(true)

	got, err := bp.FetchPage(f, pid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Page.Cell(0)) != "payload" {
		t.Errorf("cell = %q", got.Page.Cell(0))
	}
	got.Unpin(false)
	st := bp.Stats()
	if st.Hits != 1 {
		t.Errorf("Hits = %d, want 1 (page was cached)", st.Hits)
	}
}

func TestBufferPoolTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBufferPool(1) did not panic")
		}
	}()
	d := NewDiskManager(testModel())
	NewBufferPool(d, 1)
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	bp, f := newPoolForTest(8)
	// Create 20 pages through an 8-page pool; early pages must be evicted
	// and written back, then read back intact.
	for i := 0; i < 20; i++ {
		pp, err := bp.NewPage(f, PageTypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		pp.Page.InsertCell([]byte(fmt.Sprintf("page-%d", i)))
		pp.Unpin(true)
	}
	if bp.Stats().Evictions == 0 {
		t.Fatal("no evictions happened")
	}
	for i := 0; i < 20; i++ {
		pp, err := bp.FetchPage(f, PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("page-%d", i); string(pp.Page.Cell(0)) != want {
			t.Errorf("page %d cell = %q, want %q", i, pp.Page.Cell(0), want)
		}
		pp.Unpin(false)
	}
}

func TestBufferPoolClockSecondChance(t *testing.T) {
	bp, f := newPoolForTest(8)
	if bp.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1 at capacity 8", bp.Shards())
	}
	var pids []PageID
	for i := 0; i < 8; i++ {
		pp, _ := bp.NewPage(f, PageTypeHeap)
		pids = append(pids, pp.ID)
		pp.Unpin(true)
	}
	// Force one eviction cycle: the sweep clears every reference bit, wraps,
	// and evicts the oldest frame (pids[0]).
	pp, _ := bp.NewPage(f, PageTypeHeap)
	pp.Unpin(true)

	// Re-reference a resident page; its second-chance bit must protect it
	// from the next eviction while an unreferenced neighbour is taken.
	pp, err := bp.FetchPage(f, pids[1])
	if err != nil {
		t.Fatal(err)
	}
	pp.Unpin(false)
	npp, _ := bp.NewPage(f, PageTypeHeap)
	npp.Unpin(true)

	bp.Disk().ResetStats()
	pp, _ = bp.FetchPage(f, pids[1]) // referenced: must still be cached
	pp.Unpin(false)
	if got := bp.Disk().Stats().PhysicalReads; got != 0 {
		t.Errorf("referenced page was evicted (physical reads = %d)", got)
	}
	bp.Disk().ResetStats()
	pp, _ = bp.FetchPage(f, pids[0]) // victim of the first sweep
	pp.Unpin(false)
	if got := bp.Disk().Stats().PhysicalReads; got != 1 {
		t.Errorf("unreferenced page was not evicted (physical reads = %d)", got)
	}
}

func TestBufferPoolAllPinnedError(t *testing.T) {
	bp, f := newPoolForTest(8)
	var pins []*PinnedPage
	for i := 0; i < 8; i++ {
		pp, err := bp.NewPage(f, PageTypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		pins = append(pins, pp)
	}
	if _, err := bp.NewPage(f, PageTypeHeap); err == nil {
		t.Error("NewPage with all frames pinned succeeded")
	}
	for _, pp := range pins {
		pp.Unpin(false)
	}
	if _, err := bp.NewPage(f, PageTypeHeap); err != nil {
		t.Errorf("NewPage after unpin failed: %v", err)
	}
}

func TestBufferPoolDoubleUnpinPanics(t *testing.T) {
	bp, f := newPoolForTest(8)
	pp, _ := bp.NewPage(f, PageTypeHeap)
	pp.Unpin(false)
	defer func() {
		if recover() == nil {
			t.Error("double unpin did not panic")
		}
	}()
	pp.Unpin(false)
}

func TestBufferPoolResetColdCache(t *testing.T) {
	bp, f := newPoolForTest(16)
	pp, _ := bp.NewPage(f, PageTypeHeap)
	pp.Page.InsertCell([]byte("durable"))
	pid := pp.ID
	pp.Unpin(true)

	if err := bp.Reset(); err != nil {
		t.Fatal(err)
	}
	bp.Disk().ResetStats()
	got, err := bp.FetchPage(f, pid)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Unpin(false)
	if bp.Disk().Stats().PhysicalReads != 1 {
		t.Error("Reset did not cold the cache")
	}
	if string(got.Page.Cell(0)) != "durable" {
		t.Error("dirty page lost across Reset")
	}
}

func TestBufferPoolResetWithPinnedFails(t *testing.T) {
	bp, f := newPoolForTest(8)
	pp, _ := bp.NewPage(f, PageTypeHeap)
	defer pp.Unpin(false)
	if err := bp.Reset(); err == nil {
		t.Error("Reset with pinned page succeeded")
	}
}

func TestBufferPoolFlush(t *testing.T) {
	bp, f := newPoolForTest(8)
	pp, _ := bp.NewPage(f, PageTypeHeap)
	pp.Page.InsertCell([]byte("flushed"))
	pid := pp.ID
	pp.Unpin(true)
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	// Read straight from disk, bypassing the pool.
	raw := make([]byte, PageSize)
	if err := bp.Disk().ReadPage(f, pid, raw); err != nil {
		t.Fatal(err)
	}
	if string(pageFromBuf(raw).Cell(0)) != "flushed" {
		t.Error("Flush did not write page to disk")
	}
}

func TestPoolStatsSub(t *testing.T) {
	a := PoolStats{LogicalReads: 10, Hits: 5, Evictions: 2}
	b := PoolStats{LogicalReads: 4, Hits: 1, Evictions: 1}
	got := a.Sub(b)
	if got.LogicalReads != 6 || got.Hits != 4 || got.Evictions != 1 {
		t.Errorf("Sub = %+v", got)
	}
}
