package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestPage() *Page {
	return InitPage(make([]byte, PageSize), PageTypeHeap)
}

func TestInitPage(t *testing.T) {
	p := newTestPage()
	if p.Type() != PageTypeHeap {
		t.Errorf("Type = %d", p.Type())
	}
	if p.Next() != InvalidPageID {
		t.Errorf("Next = %d, want invalid", p.Next())
	}
	if p.NumSlots() != 0 {
		t.Errorf("NumSlots = %d", p.NumSlots())
	}
	if fs := p.FreeSpace(); fs < PageSize-64 {
		t.Errorf("FreeSpace = %d, suspiciously small", fs)
	}
}

func TestInitPageWrongSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("InitPage(short buffer) did not panic")
		}
	}()
	InitPage(make([]byte, 100), PageTypeHeap)
}

func TestPageHeaderFields(t *testing.T) {
	p := newTestPage()
	p.SetType(PageTypeBTreeLeaf)
	p.SetNext(42)
	p.SetExtra(7)
	p.SetExtra2(9)
	if p.Type() != PageTypeBTreeLeaf || p.Next() != 42 || p.Extra() != 7 || p.Extra2() != 9 {
		t.Errorf("header round trip failed: %d %d %d %d", p.Type(), p.Next(), p.Extra(), p.Extra2())
	}
}

func TestInsertAndReadCells(t *testing.T) {
	p := newTestPage()
	var want [][]byte
	for i := 0; i < 50; i++ {
		cell := []byte(fmt.Sprintf("cell-%03d-%s", i, bytes.Repeat([]byte{byte(i)}, i)))
		slot, ok := p.InsertCell(cell)
		if !ok {
			t.Fatalf("insert %d failed", i)
		}
		if int(slot) != i {
			t.Fatalf("slot = %d, want %d", slot, i)
		}
		want = append(want, cell)
	}
	for i, w := range want {
		if got := p.Cell(SlotID(i)); !bytes.Equal(got, w) {
			t.Errorf("cell %d mismatch", i)
		}
	}
}

func TestInsertCellAtKeepsOrder(t *testing.T) {
	p := newTestPage()
	// Insert values in random order at their sorted position.
	vals := rand.New(rand.NewSource(7)).Perm(100)
	var sorted []int
	for _, v := range vals {
		pos := 0
		for pos < len(sorted) && sorted[pos] < v {
			pos++
		}
		cell := []byte(fmt.Sprintf("%04d", v))
		if _, ok := p.InsertCellAt(pos, cell); !ok {
			t.Fatalf("InsertCellAt(%d) failed", pos)
		}
		sorted = append(sorted[:pos], append([]int{v}, sorted[pos:]...)...)
	}
	for i, v := range sorted {
		want := fmt.Sprintf("%04d", v)
		if got := string(p.Cell(SlotID(i))); got != want {
			t.Fatalf("slot %d = %q, want %q", i, got, want)
		}
	}
}

func TestInsertCellAtBounds(t *testing.T) {
	p := newTestPage()
	if _, ok := p.InsertCellAt(-1, []byte("x")); ok {
		t.Error("InsertCellAt(-1) succeeded")
	}
	if _, ok := p.InsertCellAt(1, []byte("x")); ok {
		t.Error("InsertCellAt past end succeeded")
	}
}

func TestInsertFullPage(t *testing.T) {
	p := newTestPage()
	cell := make([]byte, 100)
	n := 0
	for {
		if _, ok := p.InsertCell(cell); !ok {
			break
		}
		n++
	}
	// 8KB page, 100-byte cells + 4-byte slots: expect roughly 78 cells.
	if n < 70 || n > 82 {
		t.Errorf("fit %d cells, expected ~78", n)
	}
	if _, ok := p.InsertCell([]byte("tiny")); !ok {
		t.Log("page exactly full") // small cell may or may not fit; no assertion
	}
}

func TestDeleteAndCompact(t *testing.T) {
	p := newTestPage()
	for i := 0; i < 20; i++ {
		p.InsertCell(bytes.Repeat([]byte{byte(i)}, 200))
	}
	freeBefore := p.FreeSpace()
	for i := 0; i < 20; i += 2 {
		if !p.DeleteCell(SlotID(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if p.Cell(0) != nil {
		t.Error("deleted cell still readable")
	}
	if !bytes.Equal(p.Cell(1), bytes.Repeat([]byte{1}, 200)) {
		t.Error("surviving cell corrupted by delete")
	}
	if p.DeleteCell(0) {
		t.Error("double delete succeeded")
	}
	if p.DeleteCell(99) {
		t.Error("out-of-range delete succeeded")
	}
	p.Compact()
	if p.FreeSpace() <= freeBefore {
		t.Errorf("Compact did not reclaim space: %d -> %d", freeBefore, p.FreeSpace())
	}
	for i := 1; i < 20; i += 2 {
		if !bytes.Equal(p.Cell(SlotID(i)), bytes.Repeat([]byte{byte(i)}, 200)) {
			t.Errorf("cell %d corrupted by Compact", i)
		}
	}
}

func TestRemoveCellAt(t *testing.T) {
	p := newTestPage()
	for i := 0; i < 5; i++ {
		p.InsertCell([]byte{byte('a' + i)})
	}
	if !p.RemoveCellAt(1) {
		t.Fatal("RemoveCellAt(1) failed")
	}
	want := []string{"a", "c", "d", "e"}
	if p.NumSlots() != 4 {
		t.Fatalf("NumSlots = %d", p.NumSlots())
	}
	for i, w := range want {
		if got := string(p.Cell(SlotID(i))); got != w {
			t.Errorf("slot %d = %q, want %q", i, got, w)
		}
	}
	if p.RemoveCellAt(9) {
		t.Error("out-of-range RemoveCellAt succeeded")
	}
}

func TestPageQuickInsertRead(t *testing.T) {
	// Property: any sequence of short cells inserted at the end reads back.
	f := func(cells [][]byte) bool {
		p := newTestPage()
		var kept [][]byte
		for _, c := range cells {
			if len(c) > 256 {
				c = c[:256]
			}
			if _, ok := p.InsertCell(c); !ok {
				break
			}
			kept = append(kept, c)
		}
		for i, w := range kept {
			if !bytes.Equal(p.Cell(SlotID(i)), w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRIDString(t *testing.T) {
	r := RID{Page: 12, Slot: 3}
	if got := r.String(); got != "12:3" {
		t.Errorf("RID.String = %q", got)
	}
}
