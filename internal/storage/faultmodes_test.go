package storage

import (
	"bytes"
	"errors"
	"testing"
)

func newFaultTestPage(t *testing.T, d *DiskManager) (FileID, PageID, []byte) {
	t.Helper()
	f := d.CreateFile()
	pid, err := d.AllocPage(f)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = byte(i % 251)
	}
	if err := d.WritePage(f, pid, buf); err != nil {
		t.Fatal(err)
	}
	return f, pid, buf
}

func TestChecksumDetectsTornPage(t *testing.T) {
	d := NewDiskManager(DefaultIOModel())
	f, pid, buf := newFaultTestPage(t, d)

	dst := make([]byte, PageSize)
	if err := d.ReadPage(f, pid, dst); err != nil {
		t.Fatalf("clean read failed: %v", err)
	}
	if !bytes.Equal(dst, buf) {
		t.Fatal("clean read returned wrong bytes")
	}

	if err := d.CorruptPage(f, pid); err != nil {
		t.Fatal(err)
	}
	err := d.ReadPage(f, pid, dst)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("read of torn page: err = %v, want ErrChecksum", err)
	}
	if d.Stats().ChecksumErrors != 1 {
		t.Errorf("ChecksumErrors = %d, want 1", d.Stats().ChecksumErrors)
	}

	// A complete rewrite re-records the checksum and clears the fault.
	if err := d.WritePage(f, pid, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(f, pid, dst); err != nil {
		t.Fatalf("read after rewrite failed: %v", err)
	}
	if !bytes.Equal(dst, buf) {
		t.Error("rewrite did not restore page contents")
	}
}

func TestTransientFaultsAbsorbedByRetry(t *testing.T) {
	d := NewDiskManager(DefaultIOModel())
	f, pid, buf := newFaultTestPage(t, d)
	dst := make([]byte, PageSize)

	// A burst within the retry budget is invisible apart from the stats.
	d.InjectTransientFaults(2)
	ioBefore := d.Stats().SimulatedIO
	if err := d.ReadPage(f, pid, dst); err != nil {
		t.Fatalf("read with 2 transient faults failed: %v", err)
	}
	if !bytes.Equal(dst, buf) {
		t.Error("retried read returned wrong bytes")
	}
	if got := d.Stats().ReadRetries; got != 2 {
		t.Errorf("ReadRetries = %d, want 2", got)
	}
	// Each retry charges backoff: 2 retries + the real read.
	if got := d.Stats().SimulatedIO - ioBefore; got < 3*d.Model().RandomRead {
		t.Errorf("simulated time %v does not include retry backoff", got)
	}
}

func TestTransientBurstExceedsRetryBudget(t *testing.T) {
	d := NewDiskManager(DefaultIOModel())
	f, pid, _ := newFaultTestPage(t, d)
	dst := make([]byte, PageSize)

	d.InjectTransientFaults(maxReadRetries + 5)
	err := d.ReadPage(f, pid, dst)
	if !errors.Is(err, ErrTransientFault) {
		t.Fatalf("read under long burst: err = %v, want ErrTransientFault", err)
	}
	// The burst drains as later reads retry through it; eventually the
	// device heals and reads succeed again.
	for i := 0; i < 4; i++ {
		if d.ReadPage(f, pid, dst) == nil {
			return
		}
	}
	t.Error("reads never recovered after transient burst drained")
}

func TestWriteFaultInjection(t *testing.T) {
	d := NewDiskManager(DefaultIOModel())
	f, pid, buf := newFaultTestPage(t, d)

	d.FailWritesAfter(0)
	err := d.WritePage(f, pid, buf)
	if !errors.Is(err, ErrInjectedWriteFault) {
		t.Fatalf("write under injection: err = %v, want ErrInjectedWriteFault", err)
	}
	// The failed write must not have touched the page or its checksum.
	dst := make([]byte, PageSize)
	if err := d.ReadPage(f, pid, dst); err != nil {
		t.Fatalf("read after failed write: %v", err)
	}
	if !bytes.Equal(dst, buf) {
		t.Error("failed write mutated the page")
	}

	d.FailWritesAfter(-1)
	if err := d.WritePage(f, pid, buf); err != nil {
		t.Fatalf("write after disarm failed: %v", err)
	}
}

func TestPoolExhaustionTyped(t *testing.T) {
	d := NewDiskManager(DefaultIOModel())
	f := d.CreateFile()
	for i := 0; i < 16; i++ {
		if _, err := d.AllocPage(f); err != nil {
			t.Fatal(err)
		}
	}
	bp := NewBufferPool(d, 8)
	var pins []*PinnedPage
	for pid := PageID(0); pid < 8; pid++ {
		pp, err := bp.FetchPage(f, pid)
		if err != nil {
			t.Fatal(err)
		}
		pins = append(pins, pp)
	}
	if got := bp.Pinned(); got != 8 {
		t.Errorf("Pinned = %d, want 8", got)
	}
	_, err := bp.FetchPage(f, 10)
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("fetch into full pool: err = %v, want ErrPoolExhausted", err)
	}
	pins[0].Unpin(false)
	if _, err := bp.FetchPage(f, 10); err != nil {
		t.Fatalf("fetch after unpin failed: %v", err)
	}
}
