package storage

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedFault is returned by reads after FailReadsAfter triggers.
var ErrInjectedFault = errors.New("storage: injected read fault")

// ErrInjectedWriteFault is returned by writes after FailWritesAfter triggers.
var ErrInjectedWriteFault = errors.New("storage: injected write fault")

// ErrChecksum is returned when a page read fails checksum verification — the
// stored bytes do not match the checksum recorded at the last complete write,
// the signature of a torn (partially persisted) page. Torn pages are
// permanent media damage: reads are NOT retried.
var ErrChecksum = errors.New("storage: page checksum mismatch (torn page)")

// ErrTransientFault is the underlying cause of a read that kept failing
// transiently after the retry budget was exhausted. Single transient faults
// are absorbed by the disk manager's bounded retry and never surface.
var ErrTransientFault = errors.New("storage: transient read fault")

// maxReadRetries bounds how many times a transiently failing page read is
// retried before the fault is reported as hard.
const maxReadRetries = 3

// IOModel holds the simulated device timing constants. The same constants
// drive the optimizer's cost model (internal/opt), so that a corrected
// distinct page count changes the plan choice and the simulated execution
// time coherently — mirroring the paper's methodology of measuring real
// executions on a cold cache.
type IOModel struct {
	// RandomRead is the simulated latency of a random 8 KB page read.
	RandomRead time.Duration
	// SeqRead is the simulated latency of a sequential 8 KB page read
	// (the next page of the same file after the previous read).
	SeqRead time.Duration
}

// DefaultIOModel approximates a 2007-era enterprise disk: ~4 ms random seek
// and ~80 MB/s sequential bandwidth (0.1 ms per 8 KB page).
func DefaultIOModel() IOModel {
	return IOModel{RandomRead: 4 * time.Millisecond, SeqRead: 100 * time.Microsecond}
}

// IOStats accumulates device-level counters.
type IOStats struct {
	PhysicalReads   int64         // total pages read from "disk"
	SequentialReads int64         // reads that continued the previous page
	RandomReads     int64         // reads that required a seek
	PagesWritten    int64         // pages written
	ReadRetries     int64         // re-issued reads after transient faults
	ChecksumErrors  int64         // reads rejected by checksum verification
	SimulatedIO     time.Duration // total simulated device time
}

// Sub returns s - o, for measuring a window between two snapshots.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{
		PhysicalReads:   s.PhysicalReads - o.PhysicalReads,
		SequentialReads: s.SequentialReads - o.SequentialReads,
		RandomReads:     s.RandomReads - o.RandomReads,
		PagesWritten:    s.PagesWritten - o.PagesWritten,
		ReadRetries:     s.ReadRetries - o.ReadRetries,
		ChecksumErrors:  s.ChecksumErrors - o.ChecksumErrors,
		SimulatedIO:     s.SimulatedIO - o.SimulatedIO,
	}
}

// FileID identifies one file (heap or index) managed by a DiskManager.
type FileID uint32

// crcTable is the Castagnoli polynomial (hardware-accelerated on most CPUs).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// DiskManager is an in-memory page store standing in for the I/O subsystem.
// It hands out files, serves page reads/writes, and charges simulated time
// per the IOModel, classifying each read as sequential or random based on
// the previously read page of the same file (a simple prefetch model).
//
// Every complete write records a page checksum; reads verify it, so a torn
// page (injected with CorruptPage, or any out-of-band mutation of the stored
// bytes) surfaces as ErrChecksum instead of silently decoding garbage.
// Transient read faults are retried up to maxReadRetries times with a
// simulated backoff before being reported; retries show up in IOStats.
//
// All methods are safe for concurrent use.
type DiskManager struct {
	mu     sync.Mutex
	model  IOModel
	files  map[FileID]*fileData
	nextID FileID
	stats  IOStats
	// failAfter injects hard read faults for tests: when armed, it counts
	// down per read and every read after it reaches zero fails.
	failAfter int64
	failArmed bool
	// failWriteAfter is the write-side analog.
	failWriteAfter int64
	failWriteArmed bool
	// transient is the number of upcoming read attempts that fail
	// transiently (each attempt, including retries, consumes one).
	transient int64
	// transientDelay defers the transient burst: that many ReadPage calls
	// succeed before the burst starts (InjectTransientFaultsAt).
	transientDelay int64
	// backoff is the retry policy for transient read faults; retrySeq is the
	// monotone sequence feeding its deterministic jitter.
	backoff  BackoffPolicy
	retrySeq uint64

	// readSeq numbers ReadPage calls when a read hook is installed; the hook
	// is invoked outside the lock with the 1-based sequence number before the
	// read is served. The chaos harness uses it to cancel or expire a query
	// context at an exact read position, deterministically.
	readSeq  atomic.Int64
	readHook atomic.Value // readHookBox
}

type readHookBox struct{ fn func(seq int64) }

// SetReadHook installs fn to be called before every ReadPage with the
// 1-based sequence number of the call, and resets the sequence counter.
// Pass nil to remove the hook. The hook runs outside the manager's lock, so
// it may call back into the engine (e.g. cancel a context) without deadlock.
func (d *DiskManager) SetReadHook(fn func(seq int64)) {
	d.readSeq.Store(0)
	d.readHook.Store(readHookBox{fn})
}

// SetBackoff replaces the transient-fault retry policy. A MaxRetries of zero
// disables retry entirely (every transient fault surfaces immediately).
func (d *DiskManager) SetBackoff(p BackoffPolicy) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.backoff = p
}

// Backoff returns the current retry policy.
func (d *DiskManager) Backoff() BackoffPolicy {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.backoff
}

// FailReadsAfter arms fault injection: the next n reads succeed, every
// read after that returns ErrInjectedFault. Pass a negative n to disarm.
// Intended for tests exercising error propagation.
func (d *DiskManager) FailReadsAfter(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failAfter = n
	d.failArmed = n >= 0
}

// FailWritesAfter arms write-fault injection: the next n writes succeed,
// every write after that returns ErrInjectedWriteFault. Pass a negative n to
// disarm.
func (d *DiskManager) FailWritesAfter(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failWriteAfter = n
	d.failWriteArmed = n >= 0
}

// InjectTransientFaults makes the next n read attempts fail transiently.
// The disk manager itself retries such reads (up to maxReadRetries per
// read), so n <= maxReadRetries is absorbed invisibly — apart from
// IOStats.ReadRetries and the simulated backoff time — while a longer burst
// surfaces as an error wrapping ErrTransientFault.
func (d *DiskManager) InjectTransientFaults(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 {
		n = 0
	}
	d.transient = n
	d.transientDelay = 0
	d.retrySeq = 0
}

// InjectTransientFaultsAt positions a transient burst: the next `after`
// ReadPage calls succeed, then the following n read attempts fail
// transiently. The chaos harness sweeps `after` across a query's read
// sequence to probe every retry path deterministically.
func (d *DiskManager) InjectTransientFaultsAt(after, n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if after < 0 {
		after = 0
	}
	if n < 0 {
		n = 0
	}
	d.transientDelay = after
	d.transient = n
	// Restarting the jitter sequence makes an identical schedule reproduce
	// identical backoff delays — the determinism the chaos sweep relies on.
	d.retrySeq = 0
}

// CorruptPage simulates a torn write: the tail half of the stored page is
// overwritten with garbage while the recorded checksum still describes the
// complete page, so the next read of the page fails with ErrChecksum.
func (d *DiskManager) CorruptPage(id FileID, pid PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[id]
	if f == nil {
		return fmt.Errorf("storage: no file %d", id)
	}
	if int(pid) >= len(f.pages) {
		return fmt.Errorf("storage: file %d has no page %d", id, pid)
	}
	page := f.pages[pid]
	for i := PageSize / 2; i < PageSize; i++ {
		page[i] ^= 0xA5
	}
	return nil
}

type fileData struct {
	pages [][]byte
	// sums holds the CRC32-C of each page as of its last complete write.
	sums []uint32
	// lastRead tracks the most recently read page for the sequential-vs-
	// random classification. Tracking per file (rather than one global
	// head) models the read-ahead real devices and engines provide: a scan
	// stays sequential even when another operator's reads interleave with
	// it, as happens under an index nested loops join.
	lastRead PageID
	hasLast  bool
}

// NewDiskManager creates an empty disk with the given timing model and the
// default transient-fault backoff policy.
func NewDiskManager(model IOModel) *DiskManager {
	return &DiskManager{
		model:   model,
		files:   make(map[FileID]*fileData),
		backoff: DefaultBackoffPolicy(model),
	}
}

// Model returns the timing model.
func (d *DiskManager) Model() IOModel { return d.model }

// CreateFile allocates a new empty file and returns its ID.
func (d *DiskManager) CreateFile() FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextID
	d.nextID++
	d.files[id] = &fileData{}
	return id
}

// DropFile removes a file and all its pages.
func (d *DiskManager) DropFile(id FileID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, id)
}

// NumPages returns the number of allocated pages in the file.
func (d *DiskManager) NumPages(id FileID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[id]
	if f == nil {
		return 0
	}
	return len(f.pages)
}

// zeroPageSum is the checksum of a freshly allocated (all-zero) page.
var zeroPageSum = crc32.Checksum(make([]byte, PageSize), crcTable)

// AllocPage appends a zeroed page to the file and returns its PageID.
// Allocation itself is not charged I/O time; the subsequent write is.
func (d *DiskManager) AllocPage(id FileID) (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[id]
	if f == nil {
		return InvalidPageID, fmt.Errorf("storage: no file %d", id)
	}
	pid := PageID(len(f.pages))
	f.pages = append(f.pages, make([]byte, PageSize))
	f.sums = append(f.sums, zeroPageSum)
	return pid, nil
}

// ReadPage copies page pid of the file into dst (PageSize bytes) and charges
// simulated time. Transient device faults are absorbed by up to
// maxReadRetries retries (each charged a random-read backoff); checksum
// mismatches and hard faults are returned immediately.
func (d *DiskManager) ReadPage(id FileID, pid PageID, dst []byte) error {
	if box, ok := d.readHook.Load().(readHookBox); ok && box.fn != nil {
		box.fn(d.readSeq.Add(1))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[id]
	if f == nil {
		return fmt.Errorf("storage: no file %d", id)
	}
	if int(pid) >= len(f.pages) {
		return fmt.Errorf("storage: file %d has no page %d", id, pid)
	}
	if d.failArmed {
		if d.failAfter <= 0 {
			return ErrInjectedFault
		}
		d.failAfter--
	}
	if d.transientDelay > 0 {
		d.transientDelay--
	} else {
		// First attempt plus bounded retries for transient faults, the
		// delays charged from the central backoff policy (the device has to
		// re-seek after an aborted transfer, then back off further under
		// repeated faults).
		attempts := 0
		for d.transient > 0 {
			d.transient--
			attempts++
			if attempts > d.backoff.MaxRetries {
				return fmt.Errorf("storage: file %d page %d failed after %d retries: %w",
					id, pid, d.backoff.MaxRetries, ErrTransientFault)
			}
			d.retrySeq++
			d.stats.ReadRetries++
			d.stats.SimulatedIO += d.backoff.Delay(attempts, d.retrySeq)
		}
	}
	if crc32.Checksum(f.pages[pid], crcTable) != f.sums[pid] {
		d.stats.ChecksumErrors++
		return fmt.Errorf("storage: file %d page %d: %w", id, pid, ErrChecksum)
	}
	copy(dst, f.pages[pid])
	d.stats.PhysicalReads++
	if f.hasLast && pid == f.lastRead+1 {
		d.stats.SequentialReads++
		d.stats.SimulatedIO += d.model.SeqRead
	} else {
		d.stats.RandomReads++
		d.stats.SimulatedIO += d.model.RandomRead
	}
	f.lastRead, f.hasLast = pid, true
	return nil
}

// WritePage copies src (PageSize bytes) into page pid of the file and records
// the page's checksum. Writes are charged sequential time; the experiments in
// this repo are read-dominated, matching the paper's read-only query
// workloads.
func (d *DiskManager) WritePage(id FileID, pid PageID, src []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[id]
	if f == nil {
		return fmt.Errorf("storage: no file %d", id)
	}
	if int(pid) >= len(f.pages) {
		return fmt.Errorf("storage: file %d has no page %d", id, pid)
	}
	if d.failWriteArmed {
		if d.failWriteAfter <= 0 {
			return fmt.Errorf("storage: file %d page %d: %w", id, pid, ErrInjectedWriteFault)
		}
		d.failWriteAfter--
	}
	copy(f.pages[pid], src)
	f.sums[pid] = crc32.Checksum(f.pages[pid], crcTable)
	d.stats.PagesWritten++
	d.stats.SimulatedIO += d.model.SeqRead
	return nil
}

// Stats returns a snapshot of the accumulated counters.
func (d *DiskManager) Stats() IOStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (the head position is kept).
func (d *DiskManager) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = IOStats{}
}
