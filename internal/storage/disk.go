package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjectedFault is returned by reads after FailReadsAfter triggers.
var ErrInjectedFault = errors.New("storage: injected read fault")

// IOModel holds the simulated device timing constants. The same constants
// drive the optimizer's cost model (internal/opt), so that a corrected
// distinct page count changes the plan choice and the simulated execution
// time coherently — mirroring the paper's methodology of measuring real
// executions on a cold cache.
type IOModel struct {
	// RandomRead is the simulated latency of a random 8 KB page read.
	RandomRead time.Duration
	// SeqRead is the simulated latency of a sequential 8 KB page read
	// (the next page of the same file after the previous read).
	SeqRead time.Duration
}

// DefaultIOModel approximates a 2007-era enterprise disk: ~4 ms random seek
// and ~80 MB/s sequential bandwidth (0.1 ms per 8 KB page).
func DefaultIOModel() IOModel {
	return IOModel{RandomRead: 4 * time.Millisecond, SeqRead: 100 * time.Microsecond}
}

// IOStats accumulates device-level counters.
type IOStats struct {
	PhysicalReads   int64         // total pages read from "disk"
	SequentialReads int64         // reads that continued the previous page
	RandomReads     int64         // reads that required a seek
	PagesWritten    int64         // pages written
	SimulatedIO     time.Duration // total simulated device time
}

// Sub returns s - o, for measuring a window between two snapshots.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{
		PhysicalReads:   s.PhysicalReads - o.PhysicalReads,
		SequentialReads: s.SequentialReads - o.SequentialReads,
		RandomReads:     s.RandomReads - o.RandomReads,
		PagesWritten:    s.PagesWritten - o.PagesWritten,
		SimulatedIO:     s.SimulatedIO - o.SimulatedIO,
	}
}

// FileID identifies one file (heap or index) managed by a DiskManager.
type FileID uint32

// DiskManager is an in-memory page store standing in for the I/O subsystem.
// It hands out files, serves page reads/writes, and charges simulated time
// per the IOModel, classifying each read as sequential or random based on
// the previously read page of the same file (a simple prefetch model).
//
// All methods are safe for concurrent use.
type DiskManager struct {
	mu     sync.Mutex
	model  IOModel
	files  map[FileID]*fileData
	nextID FileID
	stats  IOStats
	// failAfter injects read faults for tests: when > 0, it counts down
	// per read and every read after it reaches zero fails.
	failAfter int64
	failArmed bool
}

// FailReadsAfter arms fault injection: the next n reads succeed, every
// read after that returns ErrInjectedFault. Pass a negative n to disarm.
// Intended for tests exercising error propagation.
func (d *DiskManager) FailReadsAfter(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failAfter = n
	d.failArmed = n >= 0
}

type fileData struct {
	pages [][]byte
	// lastRead tracks the most recently read page for the sequential-vs-
	// random classification. Tracking per file (rather than one global
	// head) models the read-ahead real devices and engines provide: a scan
	// stays sequential even when another operator's reads interleave with
	// it, as happens under an index nested loops join.
	lastRead PageID
	hasLast  bool
}

// NewDiskManager creates an empty disk with the given timing model.
func NewDiskManager(model IOModel) *DiskManager {
	return &DiskManager{model: model, files: make(map[FileID]*fileData)}
}

// Model returns the timing model.
func (d *DiskManager) Model() IOModel { return d.model }

// CreateFile allocates a new empty file and returns its ID.
func (d *DiskManager) CreateFile() FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextID
	d.nextID++
	d.files[id] = &fileData{}
	return id
}

// DropFile removes a file and all its pages.
func (d *DiskManager) DropFile(id FileID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, id)
}

// NumPages returns the number of allocated pages in the file.
func (d *DiskManager) NumPages(id FileID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[id]
	if f == nil {
		return 0
	}
	return len(f.pages)
}

// AllocPage appends a zeroed page to the file and returns its PageID.
// Allocation itself is not charged I/O time; the subsequent write is.
func (d *DiskManager) AllocPage(id FileID) (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[id]
	if f == nil {
		return InvalidPageID, fmt.Errorf("storage: no file %d", id)
	}
	pid := PageID(len(f.pages))
	f.pages = append(f.pages, make([]byte, PageSize))
	return pid, nil
}

// ReadPage copies page pid of the file into dst (PageSize bytes) and charges
// simulated time.
func (d *DiskManager) ReadPage(id FileID, pid PageID, dst []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[id]
	if f == nil {
		return fmt.Errorf("storage: no file %d", id)
	}
	if int(pid) >= len(f.pages) {
		return fmt.Errorf("storage: file %d has no page %d", id, pid)
	}
	if d.failArmed {
		if d.failAfter <= 0 {
			return ErrInjectedFault
		}
		d.failAfter--
	}
	copy(dst, f.pages[pid])
	d.stats.PhysicalReads++
	if f.hasLast && pid == f.lastRead+1 {
		d.stats.SequentialReads++
		d.stats.SimulatedIO += d.model.SeqRead
	} else {
		d.stats.RandomReads++
		d.stats.SimulatedIO += d.model.RandomRead
	}
	f.lastRead, f.hasLast = pid, true
	return nil
}

// WritePage copies src (PageSize bytes) into page pid of the file. Writes are
// charged sequential time; the experiments in this repo are read-dominated,
// matching the paper's read-only query workloads.
func (d *DiskManager) WritePage(id FileID, pid PageID, src []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[id]
	if f == nil {
		return fmt.Errorf("storage: no file %d", id)
	}
	if int(pid) >= len(f.pages) {
		return fmt.Errorf("storage: file %d has no page %d", id, pid)
	}
	copy(f.pages[pid], src)
	d.stats.PagesWritten++
	d.stats.SimulatedIO += d.model.SeqRead
	return nil
}

// Stats returns a snapshot of the accumulated counters.
func (d *DiskManager) Stats() IOStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (the head position is kept).
func (d *DiskManager) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = IOStats{}
}
