package storage

// AsInt64 packs the RID into one int64 (page in the high 48 bits, slot in
// the low 16), so an RID can ride along inside an order-preserving encoded
// key — secondary index entries append it to make duplicate keys unique.
func (r RID) AsInt64() int64 {
	return int64(r.Page)<<16 | int64(r.Slot)
}

// RIDFromInt64 unpacks a RID packed by AsInt64.
func RIDFromInt64(v int64) RID {
	return RID{Page: PageID(v >> 16), Slot: SlotID(v & 0xFFFF)}
}
