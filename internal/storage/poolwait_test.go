package storage

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fillPool pins fresh pages until every frame of every shard is pinned.
// Exhaustion is per-shard, so a single ErrPoolExhausted only means one shard
// is full — keep allocating (page ids scatter across shards by hash) until
// the pin count reaches the pool capacity.
func fillPool(t *testing.T, bp *BufferPool, file FileID) []*PinnedPage {
	t.Helper()
	var pins []*PinnedPage
	for attempts := 0; len(pins) < bp.Capacity(); attempts++ {
		if attempts > 64*bp.Capacity() {
			t.Fatalf("could not fill the pool: %d/%d pinned", len(pins), bp.Capacity())
		}
		pp, err := bp.NewPage(file, 0x7f)
		if err != nil {
			if errors.Is(err, ErrPoolExhausted) {
				continue // this shard is full; later page ids hash elsewhere
			}
			t.Fatal(err)
		}
		pins = append(pins, pp)
	}
	return pins
}

// missFetch returns a fetch of a page that exists on disk but is not
// resident, so it needs a frame. NewPage never waits for a frame; only the
// FetchPage path does, which is what these tests exercise.
func missFetch(t *testing.T, bp *BufferPool, file FileID) (FileID, PageID) {
	t.Helper()
	pid, err := bp.Disk().AllocPage(file)
	if err != nil {
		t.Fatal(err)
	}
	return file, pid
}

// TestPoolWaitTimeout: with a wait budget set, a fetch against a fully
// pinned pool blocks for about the budget, then fails wrapping
// ErrPoolExhausted, and the wait is visible in the pool stats.
func TestPoolWaitTimeout(t *testing.T) {
	disk := NewDiskManager(DefaultIOModel())
	bp := NewBufferPool(disk, 16)
	file := disk.CreateFile()
	pins := fillPool(t, bp, file)
	defer func() {
		for _, pp := range pins {
			pp.Unpin(true)
		}
	}()

	const budget = 30 * time.Millisecond
	bp.SetWaitBudget(budget)
	f, pid := missFetch(t, bp, file)
	start := time.Now()
	_, err := bp.FetchPage(f, pid)
	waited := time.Since(start)
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("error = %v, want wrapped ErrPoolExhausted", err)
	}
	if waited < budget/2 {
		t.Errorf("failed after %v, expected to wait about %v", waited, budget)
	}
	st := bp.Stats()
	if st.Waits == 0 {
		t.Error("no pool wait recorded")
	}
	if st.WaitTime <= 0 {
		t.Error("no pool wait time recorded")
	}
}

// TestPoolWaitSucceeds: a fetch that blocks on an exhausted pool completes
// as soon as a pin is released within the budget — graceful degradation
// instead of an instant exhaustion error.
func TestPoolWaitSucceeds(t *testing.T) {
	disk := NewDiskManager(DefaultIOModel())
	bp := NewBufferPool(disk, 16)
	file := disk.CreateFile()
	pins := fillPool(t, bp, file)

	bp.SetWaitBudget(2 * time.Second)
	f, pid := missFetch(t, bp, file)
	var wg sync.WaitGroup
	var fetchErr error
	var got *PinnedPage
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, fetchErr = bp.FetchPage(f, pid)
	}()
	time.Sleep(10 * time.Millisecond)
	for _, pp := range pins {
		pp.Unpin(true)
	}
	wg.Wait()
	if fetchErr != nil {
		t.Fatalf("waiting fetch failed despite released pins: %v", fetchErr)
	}
	got.Unpin(true)
	if st := bp.Stats(); st.Waits == 0 {
		t.Error("ride-through wait not recorded")
	}
	if n := bp.Pinned(); n != 0 {
		t.Errorf("%d pins left", n)
	}
}

// TestPoolWaitDefaultOff: the zero-value pool keeps the historical fail-fast
// contract.
func TestPoolWaitDefaultOff(t *testing.T) {
	disk := NewDiskManager(DefaultIOModel())
	bp := NewBufferPool(disk, 16)
	if bp.WaitBudget() != 0 {
		t.Fatalf("default wait budget = %v, want 0", bp.WaitBudget())
	}
	file := disk.CreateFile()
	pins := fillPool(t, bp, file)
	f, pid := missFetch(t, bp, file)
	start := time.Now()
	_, err := bp.FetchPage(f, pid)
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("error = %v", err)
	}
	if waited := time.Since(start); waited > 100*time.Millisecond {
		t.Errorf("fail-fast path took %v", waited)
	}
	for _, pp := range pins {
		pp.Unpin(true)
	}
}

// TestBackoffDelayDeterministic: the jittered backoff schedule is a pure
// function of (policy, attempt, sequence) — two identical fault runs cost
// identical simulated time.
func TestBackoffDelayDeterministic(t *testing.T) {
	p := DefaultBackoffPolicy(DefaultIOModel())
	for attempt := 1; attempt <= p.MaxRetries; attempt++ {
		for seq := uint64(0); seq < 8; seq++ {
			d1 := p.Delay(attempt, seq)
			d2 := p.Delay(attempt, seq)
			if d1 != d2 {
				t.Fatalf("Delay(%d,%d) nondeterministic: %v vs %v", attempt, seq, d1, d2)
			}
			if d1 <= 0 || d1 > p.Max {
				t.Fatalf("Delay(%d,%d) = %v outside (0, %v]", attempt, seq, d1, p.Max)
			}
		}
	}
	// Jitter must actually vary across the sequence (not a constant).
	base := p.Delay(1, 0)
	varied := false
	for seq := uint64(1); seq < 16; seq++ {
		if p.Delay(1, seq) != base {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("jitter never varies across the retry sequence")
	}
}

// TestBackoffGrowsToCap: with jitter off, delays grow exponentially from
// Base and saturate at Max.
func TestBackoffGrowsToCap(t *testing.T) {
	p := BackoffPolicy{MaxRetries: 6, Base: time.Millisecond, Max: 4 * time.Millisecond}
	if d := p.Delay(1, 0); d != time.Millisecond {
		t.Errorf("attempt 1 delay = %v, want %v", d, time.Millisecond)
	}
	if d := p.Delay(2, 0); d != 2*time.Millisecond {
		t.Errorf("attempt 2 delay = %v, want %v", d, 2*time.Millisecond)
	}
	for attempt := 3; attempt <= 6; attempt++ {
		if d := p.Delay(attempt, 0); d != 4*time.Millisecond {
			t.Errorf("attempt %d delay = %v, want the %v cap", attempt, d, 4*time.Millisecond)
		}
	}
}
