package storage

import (
	"testing"
	"time"
)

func testModel() IOModel {
	return IOModel{RandomRead: 4 * time.Millisecond, SeqRead: 100 * time.Microsecond}
}

func TestDiskCreateAllocReadWrite(t *testing.T) {
	d := NewDiskManager(testModel())
	f := d.CreateFile()
	pid, err := d.AllocPage(f)
	if err != nil {
		t.Fatal(err)
	}
	if pid != 0 {
		t.Errorf("first page = %d", pid)
	}
	src := make([]byte, PageSize)
	copy(src, "hello page")
	if err := d.WritePage(f, pid, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, PageSize)
	if err := d.ReadPage(f, pid, dst); err != nil {
		t.Fatal(err)
	}
	if string(dst[:10]) != "hello page" {
		t.Errorf("read back %q", dst[:10])
	}
	if d.NumPages(f) != 1 {
		t.Errorf("NumPages = %d", d.NumPages(f))
	}
}

func TestDiskErrors(t *testing.T) {
	d := NewDiskManager(testModel())
	buf := make([]byte, PageSize)
	if err := d.ReadPage(99, 0, buf); err == nil {
		t.Error("read from missing file succeeded")
	}
	f := d.CreateFile()
	if err := d.ReadPage(f, 5, buf); err == nil {
		t.Error("read of unallocated page succeeded")
	}
	if err := d.WritePage(f, 5, buf); err == nil {
		t.Error("write of unallocated page succeeded")
	}
	if _, err := d.AllocPage(99); err == nil {
		t.Error("alloc in missing file succeeded")
	}
	d.DropFile(f)
	if err := d.ReadPage(f, 0, buf); err == nil {
		t.Error("read from dropped file succeeded")
	}
}

func TestDiskSequentialVsRandomClassification(t *testing.T) {
	d := NewDiskManager(testModel())
	f := d.CreateFile()
	for i := 0; i < 10; i++ {
		d.AllocPage(f)
	}
	buf := make([]byte, PageSize)
	// Scan pages 0..9 in order: 1 random (first) + 9 sequential.
	for i := 0; i < 10; i++ {
		if err := d.ReadPage(f, PageID(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.RandomReads != 1 || st.SequentialReads != 9 {
		t.Errorf("scan: random=%d seq=%d, want 1/9", st.RandomReads, st.SequentialReads)
	}
	wantIO := testModel().RandomRead + 9*testModel().SeqRead
	if st.SimulatedIO != wantIO {
		t.Errorf("SimulatedIO = %v, want %v", st.SimulatedIO, wantIO)
	}
	// Now random hops: every read is a seek.
	d.ResetStats()
	for _, p := range []PageID{5, 2, 9, 0} {
		d.ReadPage(f, p, buf)
	}
	st = d.Stats()
	if st.RandomReads != 4 || st.SequentialReads != 0 {
		t.Errorf("hops: random=%d seq=%d, want 4/0", st.RandomReads, st.SequentialReads)
	}
}

func TestDiskSequentialAcrossFilesIsRandom(t *testing.T) {
	d := NewDiskManager(testModel())
	f1, f2 := d.CreateFile(), d.CreateFile()
	d.AllocPage(f1)
	d.AllocPage(f1)
	d.AllocPage(f2)
	d.AllocPage(f2)
	buf := make([]byte, PageSize)
	d.ReadPage(f1, 0, buf)
	d.ReadPage(f2, 1, buf) // different file, no prior read there: a seek
	st := d.Stats()
	if st.RandomReads != 2 {
		t.Errorf("RandomReads = %d, want 2", st.RandomReads)
	}
}

func TestDiskInterleavedStreamsStaySequential(t *testing.T) {
	// Per-file head tracking models read-ahead: two scans interleaving
	// their reads (as under an INL join) each stay sequential.
	d := NewDiskManager(testModel())
	f1, f2 := d.CreateFile(), d.CreateFile()
	for i := 0; i < 5; i++ {
		d.AllocPage(f1)
		d.AllocPage(f2)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < 5; i++ {
		d.ReadPage(f1, PageID(i), buf)
		d.ReadPage(f2, PageID(i), buf)
	}
	st := d.Stats()
	if st.RandomReads != 2 || st.SequentialReads != 8 {
		t.Errorf("interleaved: random=%d seq=%d, want 2/8", st.RandomReads, st.SequentialReads)
	}
}

func TestIOStatsSub(t *testing.T) {
	a := IOStats{PhysicalReads: 10, SequentialReads: 6, RandomReads: 4, PagesWritten: 2, SimulatedIO: time.Second}
	b := IOStats{PhysicalReads: 3, SequentialReads: 2, RandomReads: 1, PagesWritten: 1, SimulatedIO: time.Millisecond}
	got := a.Sub(b)
	if got.PhysicalReads != 7 || got.SequentialReads != 4 || got.RandomReads != 3 ||
		got.PagesWritten != 1 || got.SimulatedIO != time.Second-time.Millisecond {
		t.Errorf("Sub = %+v", got)
	}
}
