package storage

import "time"

// BackoffPolicy is the single retry/backoff policy for transient storage
// faults. Every layer that retries a transiently failing operation — today
// the DiskManager's page-read retry — charges delays from one policy instead
// of hard-coding its own, so the retry budget and the backoff curve are
// tunable (and observable) in one place.
//
// Delays grow exponentially from Base up to Max, with a deterministic jitter:
// the jitter for a given (Seed, sequence, attempt) triple is a pure function,
// so a seeded run — the chaos harness, a reproduced bug — sees byte-identical
// timing charges on every execution.
type BackoffPolicy struct {
	// MaxRetries bounds how many times an operation is retried before the
	// transient fault is reported as hard. Zero or negative disables retry.
	MaxRetries int
	// Base is the delay charged for the first retry.
	Base time.Duration
	// Max caps the exponentially growing delay. Zero means no cap.
	Max time.Duration
	// Jitter is the fraction of each delay that is randomized away: the
	// charged delay is uniform in [(1-Jitter)·d, d]. Zero disables jitter.
	Jitter float64
	// Seed selects the deterministic jitter stream.
	Seed uint64
}

// DefaultBackoffPolicy matches the historical retry behavior of the disk
// manager under the given timing model: up to maxReadRetries retries, each
// charged about one random read (the device re-seeks after an aborted
// transfer), growing to a small multiple under repeated faults.
func DefaultBackoffPolicy(model IOModel) BackoffPolicy {
	return BackoffPolicy{
		MaxRetries: maxReadRetries,
		Base:       model.RandomRead,
		Max:        4 * model.RandomRead,
		Jitter:     0.25,
		Seed:       1,
	}
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-distributed hash
// used to derive deterministic jitter from (seed, seq, attempt).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Delay returns the backoff before retry `attempt` (1-based), where seq is a
// monotone per-device retry sequence number. The result is a pure function of
// (policy, attempt, seq): no global randomness, so seeded runs reproduce.
func (p BackoffPolicy) Delay(attempt int, seq uint64) time.Duration {
	d := p.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.Max > 0 && d >= p.Max {
			d = p.Max
			break
		}
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 && d > 0 {
		h := splitmix64(p.Seed ^ seq*0x9e3779b97f4a7c15 ^ uint64(attempt)<<48)
		frac := float64(h>>11) / float64(uint64(1)<<53) // uniform in [0,1)
		d = time.Duration(float64(d) * (1 - p.Jitter*frac))
	}
	if d < 0 {
		d = 0
	}
	return d
}
