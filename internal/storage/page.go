// Package storage implements the lowest layer of the engine: fixed-size
// slotted pages, an in-memory disk manager that charges simulated I/O time
// and distinguishes sequential from random reads, and an LRU buffer pool.
//
// The distinct-page-count mechanisms of the paper are defined in terms of
// page identity (PID) and page-access order, so this layer models both
// faithfully: every row has a PID, heap and clustered-index scans touch each
// page exactly once (the "grouped page access" property), and index fetches
// touch pages in row order with repeats.
package storage

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the size of every page in bytes (matching SQL Server's 8 KB).
const PageSize = 8192

// PageID identifies a page within one file. InvalidPageID marks "no page".
type PageID uint32

// InvalidPageID is the nil page reference.
const InvalidPageID PageID = 0xFFFFFFFF

// SlotID identifies a cell within a page.
type SlotID uint16

// RID is a row identifier: the page holding the row and the slot within it.
type RID struct {
	Page PageID
	Slot SlotID
}

// String renders the RID as "page:slot".
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Page types stored in the page header.
const (
	PageTypeFree       byte = iota // unallocated
	PageTypeHeap                   // heap data page
	PageTypeBTreeLeaf              // B+tree leaf
	PageTypeBTreeInner             // B+tree internal node
	PageTypeMeta                   // file metadata page
)

// Page header layout (bytes 0..15 are reserved for the owner):
//
//	off 0:  page type (byte)
//	off 4:  next page (uint32), e.g. right-sibling pointer for leaves
//	off 8:  extra (uint32), e.g. rightmost child for internal nodes
//	off 12: extra2 (uint32)
//
// Slot machinery starts at byte 16:
//
//	off 16: number of slots (uint16)
//	off 18: cellStart (uint16): offset of the lowest cell byte
//	off 20: slot directory, 4 bytes per slot (offset uint16, length uint16)
//
// Cells are allocated from the end of the page downward; the slot directory
// grows upward. A slot offset of 0xFFFF marks a deleted slot.
const (
	headerSize     = 16
	offNumSlots    = 16
	offCellStart   = 18
	slotDirStart   = 20
	slotEntrySize  = 4
	deletedSlotOff = 0xFFFF
)

// Page is one fixed-size slotted page. The zero value is not usable; obtain
// pages from a File via the buffer pool or call InitPage on a raw buffer.
type Page struct {
	buf []byte
}

// InitPage formats buf (which must be PageSize bytes) as an empty page of the
// given type and returns it.
func InitPage(buf []byte, typ byte) *Page {
	if len(buf) != PageSize {
		panic(fmt.Sprintf("storage: InitPage on %d-byte buffer", len(buf)))
	}
	for i := range buf {
		buf[i] = 0
	}
	p := &Page{buf: buf}
	p.buf[0] = typ
	p.SetNext(InvalidPageID)
	binary.LittleEndian.PutUint16(p.buf[offNumSlots:], 0)
	binary.LittleEndian.PutUint16(p.buf[offCellStart:], PageSize)
	return p
}

// pageFromBuf wraps an existing formatted buffer.
func pageFromBuf(buf []byte) *Page { return &Page{buf: buf} }

// Type returns the page type byte.
func (p *Page) Type() byte { return p.buf[0] }

// SetType updates the page type byte.
func (p *Page) SetType(t byte) { p.buf[0] = t }

// Next returns the next-page pointer.
func (p *Page) Next() PageID {
	return PageID(binary.LittleEndian.Uint32(p.buf[4:]))
}

// SetNext updates the next-page pointer.
func (p *Page) SetNext(id PageID) {
	binary.LittleEndian.PutUint32(p.buf[4:], uint32(id))
}

// Extra returns the first owner-defined header word.
func (p *Page) Extra() uint32 { return binary.LittleEndian.Uint32(p.buf[8:]) }

// SetExtra updates the first owner-defined header word.
func (p *Page) SetExtra(v uint32) { binary.LittleEndian.PutUint32(p.buf[8:], v) }

// Extra2 returns the second owner-defined header word.
func (p *Page) Extra2() uint32 { return binary.LittleEndian.Uint32(p.buf[12:]) }

// SetExtra2 updates the second owner-defined header word.
func (p *Page) SetExtra2(v uint32) { binary.LittleEndian.PutUint32(p.buf[12:], v) }

// NumSlots returns the number of slots in the directory, including deleted ones.
func (p *Page) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p.buf[offNumSlots:]))
}

func (p *Page) setNumSlots(n int) {
	binary.LittleEndian.PutUint16(p.buf[offNumSlots:], uint16(n))
}

func (p *Page) cellStart() int {
	return int(binary.LittleEndian.Uint16(p.buf[offCellStart:]))
}

func (p *Page) setCellStart(n int) {
	binary.LittleEndian.PutUint16(p.buf[offCellStart:], uint16(n))
}

func (p *Page) slotEntry(i int) (off, length int) {
	base := slotDirStart + i*slotEntrySize
	return int(binary.LittleEndian.Uint16(p.buf[base:])),
		int(binary.LittleEndian.Uint16(p.buf[base+2:]))
}

func (p *Page) setSlotEntry(i, off, length int) {
	base := slotDirStart + i*slotEntrySize
	binary.LittleEndian.PutUint16(p.buf[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// FreeSpace returns the number of contiguous free bytes available for one new
// cell (accounting for its slot-directory entry).
func (p *Page) FreeSpace() int {
	free := p.cellStart() - (slotDirStart + p.NumSlots()*slotEntrySize)
	free -= slotEntrySize // room for the new cell's own slot entry
	if free < 0 {
		return 0
	}
	return free
}

// Cell returns the bytes of slot i, or nil if the slot is deleted. The
// returned slice aliases the page buffer and must not be retained across
// page modifications.
func (p *Page) Cell(i SlotID) []byte {
	off, length := p.slotEntry(int(i))
	if off == deletedSlotOff {
		return nil
	}
	return p.buf[off : off+length]
}

// InsertCell appends a cell at the end of the slot directory. It returns the
// new slot and true, or 0 and false if the page lacks space.
func (p *Page) InsertCell(data []byte) (SlotID, bool) {
	return p.InsertCellAt(p.NumSlots(), data)
}

// InsertCellAt inserts a cell so that it becomes slot i, shifting subsequent
// slot entries up by one (used to keep B+tree nodes sorted). It returns the
// slot and true, or 0 and false if the page lacks space or i is out of range.
func (p *Page) InsertCellAt(i int, data []byte) (SlotID, bool) {
	n := p.NumSlots()
	if i < 0 || i > n {
		return 0, false
	}
	if len(data) > p.FreeSpace() {
		return 0, false
	}
	newStart := p.cellStart() - len(data)
	copy(p.buf[newStart:], data)
	// Shift slot entries [i, n) up one position.
	if i < n {
		src := slotDirStart + i*slotEntrySize
		end := slotDirStart + n*slotEntrySize
		copy(p.buf[src+slotEntrySize:end+slotEntrySize], p.buf[src:end])
	}
	p.setSlotEntry(i, newStart, len(data))
	p.setNumSlots(n + 1)
	p.setCellStart(newStart)
	return SlotID(i), true
}

// DeleteCell marks slot i deleted. The space is reclaimed by Compact. It
// returns false if i is out of range or already deleted.
func (p *Page) DeleteCell(i SlotID) bool {
	if int(i) >= p.NumSlots() {
		return false
	}
	off, _ := p.slotEntry(int(i))
	if off == deletedSlotOff {
		return false
	}
	p.setSlotEntry(int(i), deletedSlotOff, 0)
	return true
}

// RemoveCellAt removes slot i entirely, shifting subsequent slot entries down
// (used by B+tree nodes where slot positions encode sort order). The cell
// bytes are reclaimed by Compact.
func (p *Page) RemoveCellAt(i int) bool {
	n := p.NumSlots()
	if i < 0 || i >= n {
		return false
	}
	src := slotDirStart + (i+1)*slotEntrySize
	end := slotDirStart + n*slotEntrySize
	copy(p.buf[slotDirStart+i*slotEntrySize:], p.buf[src:end])
	p.setNumSlots(n - 1)
	return true
}

// Compact rewrites the page so that live cells are contiguous, reclaiming
// space from deleted or removed cells. Slot numbering is preserved.
func (p *Page) Compact() {
	n := p.NumSlots()
	type live struct {
		slot, off, length int
	}
	var cells []live
	for i := 0; i < n; i++ {
		off, length := p.slotEntry(i)
		if off != deletedSlotOff {
			cells = append(cells, live{i, off, length})
		}
	}
	newStart := PageSize
	// Copy cell payloads out first, then back in, so overlaps are safe.
	payload := make([][]byte, len(cells))
	for i, c := range cells {
		payload[i] = append([]byte(nil), p.buf[c.off:c.off+c.length]...)
	}
	for i, c := range cells {
		newStart -= c.length
		copy(p.buf[newStart:], payload[i])
		p.setSlotEntry(c.slot, newStart, c.length)
	}
	p.setCellStart(newStart)
}

// Bytes exposes the raw page buffer (for the disk manager and tests).
func (p *Page) Bytes() []byte { return p.buf }
