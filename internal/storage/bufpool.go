package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// ErrPoolExhausted is returned when a page must be brought in but every
// frame is pinned. It is a typed, recoverable condition: once callers unpin,
// the pool serves requests again.
var ErrPoolExhausted = errors.New("storage: buffer pool exhausted (all frames pinned)")

// PoolStats accumulates buffer-pool counters. LogicalReads counts every page
// request; Hits counts those served from memory.
type PoolStats struct {
	LogicalReads int64
	Hits         int64
	Evictions    int64
}

// Sub returns s - o.
func (s PoolStats) Sub(o PoolStats) PoolStats {
	return PoolStats{
		LogicalReads: s.LogicalReads - o.LogicalReads,
		Hits:         s.Hits - o.Hits,
		Evictions:    s.Evictions - o.Evictions,
	}
}

type frameKey struct {
	file FileID
	page PageID
}

type frame struct {
	key   frameKey
	buf   []byte
	dirty bool
	pins  int
	lru   *list.Element // nil while pinned
}

// BufferPool caches pages above the DiskManager with LRU replacement.
// Unpinned pages are eviction candidates; dirty pages are written back on
// eviction or Flush. All methods are safe for concurrent use, though the
// experiments run single-threaded like the paper's.
type BufferPool struct {
	mu       sync.Mutex
	disk     *DiskManager
	capacity int
	frames   map[frameKey]*frame
	lruList  *list.List // front = most recently used
	stats    PoolStats
}

// NewBufferPool creates a pool holding up to capacity pages. A capacity of at
// least a few dozen pages is needed for B+tree traversals; NewBufferPool
// panics below 8 to catch misconfiguration early.
func NewBufferPool(disk *DiskManager, capacity int) *BufferPool {
	if capacity < 8 {
		panic(fmt.Sprintf("storage: buffer pool capacity %d too small", capacity))
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[frameKey]*frame, capacity),
		lruList:  list.New(),
	}
}

// Disk returns the underlying disk manager.
func (bp *BufferPool) Disk() *DiskManager { return bp.disk }

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// PinnedPage is a pinned page handle. Callers must Unpin exactly once.
type PinnedPage struct {
	pool *BufferPool
	fr   *frame
	Page *Page
	File FileID
	ID   PageID
}

// Unpin releases the pin. If dirty is true the page will be written back
// before eviction.
func (pp *PinnedPage) Unpin(dirty bool) {
	pp.pool.unpin(pp.fr, dirty)
}

// FetchPage pins page pid of the file, reading it from disk on a miss.
func (bp *BufferPool) FetchPage(file FileID, pid PageID) (*PinnedPage, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats.LogicalReads++
	key := frameKey{file, pid}
	if fr, ok := bp.frames[key]; ok {
		bp.stats.Hits++
		bp.pinLocked(fr)
		return &PinnedPage{pool: bp, fr: fr, Page: pageFromBuf(fr.buf), File: file, ID: pid}, nil
	}
	fr, err := bp.allocFrameLocked(key)
	if err != nil {
		return nil, err
	}
	if err := bp.disk.ReadPage(file, pid, fr.buf); err != nil {
		delete(bp.frames, key)
		return nil, err
	}
	bp.pinLocked(fr)
	return &PinnedPage{pool: bp, fr: fr, Page: pageFromBuf(fr.buf), File: file, ID: pid}, nil
}

// NewPage allocates a fresh page in the file, formats it with the given type,
// and returns it pinned and dirty.
func (bp *BufferPool) NewPage(file FileID, typ byte) (*PinnedPage, error) {
	pid, err := bp.disk.AllocPage(file)
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	key := frameKey{file, pid}
	fr, err := bp.allocFrameLocked(key)
	if err != nil {
		return nil, err
	}
	InitPage(fr.buf, typ)
	fr.dirty = true
	bp.pinLocked(fr)
	return &PinnedPage{pool: bp, fr: fr, Page: pageFromBuf(fr.buf), File: file, ID: pid}, nil
}

// allocFrameLocked finds or evicts a frame for key. Caller holds bp.mu.
func (bp *BufferPool) allocFrameLocked(key frameKey) (*frame, error) {
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictLocked(); err != nil {
			return nil, err
		}
	}
	fr := &frame{key: key, buf: make([]byte, PageSize)}
	bp.frames[key] = fr
	return fr, nil
}

func (bp *BufferPool) evictLocked() error {
	el := bp.lruList.Back()
	if el == nil {
		return fmt.Errorf("storage: all %d pages pinned: %w", bp.capacity, ErrPoolExhausted)
	}
	fr := el.Value.(*frame)
	if fr.dirty {
		if err := bp.disk.WritePage(fr.key.file, fr.key.page, fr.buf); err != nil {
			return err
		}
	}
	bp.lruList.Remove(el)
	delete(bp.frames, fr.key)
	bp.stats.Evictions++
	return nil
}

func (bp *BufferPool) pinLocked(fr *frame) {
	if fr.lru != nil {
		bp.lruList.Remove(fr.lru)
		fr.lru = nil
	}
	fr.pins++
}

func (bp *BufferPool) unpin(fr *frame, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr.pins <= 0 {
		panic("storage: unpin of unpinned page")
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
	if fr.pins == 0 {
		fr.lru = bp.lruList.PushFront(fr)
	}
}

// Flush writes back all dirty pages (pinned or not) without evicting them.
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, fr := range bp.frames {
		if fr.dirty {
			if err := bp.disk.WritePage(fr.key.file, fr.key.page, fr.buf); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// Reset flushes dirty pages and drops every cached page, simulating a cold
// cache (the paper measures all executions cold). It returns an error if any
// page is still pinned.
func (bp *BufferPool) Reset() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, fr := range bp.frames {
		if fr.pins > 0 {
			return fmt.Errorf("storage: Reset with pinned page %v", fr.key)
		}
		if fr.dirty {
			if err := bp.disk.WritePage(fr.key.file, fr.key.page, fr.buf); err != nil {
				return err
			}
		}
	}
	bp.frames = make(map[frameKey]*frame, bp.capacity)
	bp.lruList.Init()
	return nil
}

// Pinned returns the number of currently pinned frames. A query that has
// fully finished — successfully or not — must leave this at zero; the
// robustness tests assert it after every fault scenario.
func (bp *BufferPool) Pinned() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, fr := range bp.frames {
		if fr.pins > 0 {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the pool counters.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = PoolStats{}
}
