package storage

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPoolExhausted is returned when a page must be brought in but every
// eligible frame is pinned. It is a typed, recoverable condition: once
// callers unpin, the pool serves requests again.
var ErrPoolExhausted = errors.New("storage: buffer pool exhausted (all frames pinned)")

// PoolStats accumulates buffer-pool counters. LogicalReads counts every page
// request; Hits counts those served from memory. Prefetched counts pages
// brought in asynchronously by Prefetch — those reads are not logical reads,
// because no operator asked for the page yet.
type PoolStats struct {
	LogicalReads int64
	Hits         int64
	Evictions    int64
	Prefetched   int64
	// Waits counts fetches that found their shard exhausted and blocked for
	// a frame; WaitTime is the total time spent blocked. Merged across
	// shards on read.
	Waits    int64
	WaitTime time.Duration
}

// Sub returns s - o.
func (s PoolStats) Sub(o PoolStats) PoolStats {
	return PoolStats{
		LogicalReads: s.LogicalReads - o.LogicalReads,
		Hits:         s.Hits - o.Hits,
		Evictions:    s.Evictions - o.Evictions,
		Prefetched:   s.Prefetched - o.Prefetched,
		Waits:        s.Waits - o.Waits,
		WaitTime:     s.WaitTime - o.WaitTime,
	}
}

// HitRatio returns Hits/LogicalReads, or 0 when the window saw no logical
// reads at all — which happens when a query's pages were all brought in by
// the prefetcher but the query was cancelled before touching any of them.
// The old expression divided by zero there and reported NaN.
func (s PoolStats) HitRatio() float64 {
	if s.LogicalReads == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.LogicalReads)
}

type frameKey struct {
	file FileID
	page PageID
}

// hash mixes the key into a shard selector (splitmix64 finalizer, so nearby
// page ids of one file scatter across shards instead of convoying).
func (k frameKey) hash() uint64 {
	x := uint64(k.file)<<32 | uint64(uint32(k.page))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// frame is one resident page. ref is the CLOCK reference bit: set on every
// pin, cleared as the hand sweeps past; a frame is evicted only when the
// hand finds it unpinned with ref already cleared (second chance).
type frame struct {
	shard *poolShard
	key   frameKey
	buf   []byte
	dirty bool
	pins  int
	ref   bool
}

// poolShard is one independently locked slice of the pool: a frame map, a
// CLOCK ring, and the shard-local eviction counter. A page's shard is fixed
// by its frameKey hash, so no operation ever takes two shard locks.
type poolShard struct {
	mu        sync.Mutex
	capacity  int
	frames    map[frameKey]*frame
	ring      []*frame // CLOCK ring; grows up to capacity, slots reused
	hand      int
	free      []*frame // frames whose read failed; reused before growing
	evictions int64

	// cond wakes fetchers blocked on an exhausted shard; it is signalled
	// whenever a frame's pin count drops to zero or a frame is freed.
	cond     *sync.Cond
	waits    int64
	waitTime time.Duration

	// inflight counts prefetch reads admitted for this shard but not yet
	// completed; Prefetch refuses new work past prefetchWindow so a fast
	// producer cannot flood a shard and evict the working set.
	inflight atomic.Int32
}

// maxPoolShards caps the shard count; beyond ~16 shards the mutexes stop
// being the bottleneck and the extra rings just fragment capacity.
const maxPoolShards = 16

// minShardPages is the smallest useful shard: a B+tree descent plus a scan
// pin must fit with headroom, mirroring the old whole-pool minimum of 8.
const minShardPages = 8

// BufferPool caches pages above the DiskManager. It is sharded by frameKey
// hash — each shard has its own mutex, frame table, and CLOCK replacement
// ring — so concurrent queries on different pages proceed without queueing
// on one pool-wide lock. Unpinned pages are eviction candidates; dirty pages
// are written back on eviction or Flush. All methods are safe for concurrent
// use.
type BufferPool struct {
	disk     *DiskManager
	capacity int
	shardBit uint64 // len(shards)-1; shard count is a power of two
	shards   []*poolShard

	// Hit/miss counters are pool-wide atomics: FetchPage bumps them outside
	// any shard lock, and Stats() reads them without stopping the world.
	logicalReads atomic.Int64
	hits         atomic.Int64
	prefetched   atomic.Int64

	// waitBudget (nanoseconds) bounds how long a fetch may block waiting for
	// a frame when its shard is exhausted. Zero keeps the historical
	// fail-fast behavior: exhaustion errors immediately.
	waitBudget atomic.Int64

	// waitObs, when set, is invoked with the duration of every completed
	// frame wait — the engine feeds these into its pool-wait histogram.
	// The callback runs on the rare blocked path only (never on a cache
	// hit or a free-frame miss), while the shard lock is held, so it must
	// be fast and must not re-enter the pool.
	waitObs atomic.Pointer[func(time.Duration)]
}

// SetWaitBudget bounds how long FetchPage blocks for a free frame when every
// frame of the target shard is pinned, converting pool exhaustion from an
// instant error into a bounded wait: once a concurrent query unpins, the
// blocked fetch proceeds. Zero (the default) fails fast. The budget applies
// per fetch; waits show up as Waits/WaitTime in Stats.
func (bp *BufferPool) SetWaitBudget(d time.Duration) {
	if d < 0 {
		d = 0
	}
	bp.waitBudget.Store(int64(d))
}

// WaitBudget returns the current frame-wait budget.
func (bp *BufferPool) WaitBudget() time.Duration {
	return time.Duration(bp.waitBudget.Load())
}

// SetWaitObserver installs fn to be called with each completed frame
// wait's duration (nil uninstalls). The observer runs under the waiting
// shard's lock on the already-blocked slow path: keep it to a few atomic
// operations and never call back into the pool from it.
func (bp *BufferPool) SetWaitObserver(fn func(time.Duration)) {
	if fn == nil {
		bp.waitObs.Store(nil)
		return
	}
	bp.waitObs.Store(&fn)
}

// NewBufferPool creates a pool holding up to capacity pages, sharded as wide
// as the capacity allows (each shard keeps at least minShardPages frames, up
// to maxPoolShards shards). A capacity of at least a few dozen pages is
// needed for B+tree traversals; NewBufferPool panics below 8 to catch
// misconfiguration early.
func NewBufferPool(disk *DiskManager, capacity int) *BufferPool {
	if capacity < minShardPages {
		panic(fmt.Sprintf("storage: buffer pool capacity %d too small", capacity))
	}
	n := 1
	for n*2 <= maxPoolShards && capacity/(n*2) >= minShardPages {
		n *= 2
	}
	bp := &BufferPool{
		disk:     disk,
		capacity: capacity,
		shardBit: uint64(n - 1),
		shards:   make([]*poolShard, n),
	}
	for i := range bp.shards {
		// Spread capacity across shards; earlier shards absorb the remainder
		// so the per-shard capacities sum exactly to the configured total.
		c := capacity / n
		if i < capacity%n {
			c++
		}
		sh := &poolShard{
			capacity: c,
			frames:   make(map[frameKey]*frame, c),
		}
		sh.cond = sync.NewCond(&sh.mu)
		bp.shards[i] = sh
	}
	return bp
}

// shardFor returns the shard owning key.
func (bp *BufferPool) shardFor(key frameKey) *poolShard {
	return bp.shards[key.hash()&bp.shardBit]
}

// Disk returns the underlying disk manager.
func (bp *BufferPool) Disk() *DiskManager { return bp.disk }

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Shards returns the number of independently locked pool shards.
func (bp *BufferPool) Shards() int { return len(bp.shards) }

// PinnedPage is a pinned page handle. Callers must Unpin exactly once.
type PinnedPage struct {
	fr   *frame
	Page *Page
	File FileID
	ID   PageID
}

// Unpin releases the pin. If dirty is true the page will be written back
// before eviction.
func (pp *PinnedPage) Unpin(dirty bool) {
	pp.fr.shard.unpin(pp.fr, dirty)
}

// FetchPage pins page pid of the file, reading it from disk on a miss. When
// the target shard is exhausted (every frame pinned) and a wait budget is
// configured, the fetch blocks up to that budget for a concurrent unpin
// instead of failing immediately.
func (bp *BufferPool) FetchPage(file FileID, pid PageID) (*PinnedPage, error) {
	bp.logicalReads.Add(1)
	key := frameKey{file, pid}
	s := bp.shardFor(key)
	s.mu.Lock()
	fr, resident, err := s.acquireFrameLocked(bp, key)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if resident {
		fr.pins++
		fr.ref = true
		s.mu.Unlock()
		bp.hits.Add(1)
		return &PinnedPage{fr: fr, Page: pageFromBuf(fr.buf), File: file, ID: pid}, nil
	}
	if err := bp.disk.ReadPage(file, pid, fr.buf); err != nil {
		s.releaseFrameLocked(fr)
		s.mu.Unlock()
		return nil, err
	}
	fr.pins++
	fr.ref = true
	s.mu.Unlock()
	return &PinnedPage{fr: fr, Page: pageFromBuf(fr.buf), File: file, ID: pid}, nil
}

// acquireFrameLocked returns the resident frame for key (resident=true) or a
// fresh frame registered for key (resident=false). On shard exhaustion it
// waits, up to the pool's wait budget, for a pin to drop or a frame to free;
// the deadline is enforced by a timer broadcast so an expired waiter wakes
// even if no unpin ever arrives. Caller holds s.mu throughout (Wait releases
// it while blocked).
func (s *poolShard) acquireFrameLocked(bp *BufferPool, key frameKey) (*frame, bool, error) {
	if fr, ok := s.frames[key]; ok {
		return fr, true, nil
	}
	fr, err := s.allocFrameLocked(bp.disk, key)
	if err == nil || !errors.Is(err, ErrPoolExhausted) {
		return fr, false, err
	}
	budget := time.Duration(bp.waitBudget.Load())
	if budget <= 0 {
		return nil, false, err
	}
	s.waits++
	start := time.Now()
	timer := time.AfterFunc(budget, s.cond.Broadcast)
	defer timer.Stop()
	defer func() {
		d := time.Since(start)
		s.waitTime += d
		if fn := bp.waitObs.Load(); fn != nil {
			(*fn)(d)
		}
	}()
	for {
		s.cond.Wait()
		// A concurrent fetch may have brought the page in while we slept.
		if fr, ok := s.frames[key]; ok {
			return fr, true, nil
		}
		fr, err = s.allocFrameLocked(bp.disk, key)
		if err == nil || !errors.Is(err, ErrPoolExhausted) {
			return fr, false, err
		}
		if time.Since(start) >= budget {
			return nil, false, fmt.Errorf("storage: frame wait timed out after %v: %w", budget, err)
		}
	}
}

// prefetchWindow caps the prefetch reads in flight per shard. The window
// keeps read-ahead from racing arbitrarily far ahead of the consuming scan
// and from churning a shard's CLOCK ring faster than demand fetches refill
// their reference bits.
const prefetchWindow = 8

// Prefetch schedules asynchronous reads of the given pages into the pool.
// It is purely advisory: pages already resident are skipped, pages whose
// shard has a full in-flight window are dropped, read errors are swallowed
// (the demand fetch will surface them), and pinned frames are never evicted
// to make room (the CLOCK hand skips them as always). Prefetched frames
// enter the pool unpinned with the reference bit set, so they survive one
// sweep of the hand — long enough for a scan reading just behind the window.
//
// Prefetch reads do not count as logical reads or hits; they increment the
// separate Prefetched counter in Stats.
func (bp *BufferPool) Prefetch(file FileID, pids []PageID) {
	admitted := make([]PageID, 0, len(pids))
	for _, pid := range pids {
		s := bp.shardFor(frameKey{file, pid})
		if s.inflight.Add(1) > prefetchWindow {
			s.inflight.Add(-1)
			continue
		}
		admitted = append(admitted, pid)
	}
	if len(admitted) == 0 {
		return
	}
	// Fire-and-forget by design: prefetch is advisory I/O with no caller to
	// join or cancel. The per-shard inflight window (released in
	// prefetchOne) bounds how many goroutines run, and a prefetch racing
	// pool shutdown only populates frames that Reset then discards.
	//dbvet:ignore goroutinejoin
	go func() {
		for _, pid := range admitted {
			bp.prefetchOne(file, pid)
		}
	}()
}

// prefetchOne brings one page into its shard if absent. The caller has
// already reserved an inflight slot; it is released here.
func (bp *BufferPool) prefetchOne(file FileID, pid PageID) {
	key := frameKey{file, pid}
	s := bp.shardFor(key)
	defer s.inflight.Add(-1)
	s.mu.Lock()
	if _, ok := s.frames[key]; ok {
		s.mu.Unlock()
		return
	}
	fr, err := s.allocFrameLocked(bp.disk, key)
	if err != nil {
		// Every frame pinned: the shard has no room for advisory reads.
		s.mu.Unlock()
		return
	}
	if err := bp.disk.ReadPage(file, pid, fr.buf); err != nil {
		s.releaseFrameLocked(fr)
		s.mu.Unlock()
		return
	}
	fr.ref = true
	s.mu.Unlock()
	bp.prefetched.Add(1)
}

// DrainPrefetch blocks until no prefetch reads are in flight. Tests and
// benchmarks use it to make pool contents deterministic before asserting;
// the hot path never needs it.
func (bp *BufferPool) DrainPrefetch() {
	for {
		var n int32
		for _, s := range bp.shards {
			n += s.inflight.Load()
		}
		if n == 0 {
			return
		}
		runtime.Gosched()
	}
}

// NewPage allocates a fresh page in the file, formats it with the given type,
// and returns it pinned and dirty.
func (bp *BufferPool) NewPage(file FileID, typ byte) (*PinnedPage, error) {
	pid, err := bp.disk.AllocPage(file)
	if err != nil {
		return nil, err
	}
	key := frameKey{file, pid}
	s := bp.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	fr, err := s.allocFrameLocked(bp.disk, key)
	if err != nil {
		return nil, err
	}
	InitPage(fr.buf, typ)
	fr.dirty = true
	fr.pins++
	fr.ref = true
	return &PinnedPage{fr: fr, Page: pageFromBuf(fr.buf), File: file, ID: pid}, nil
}

// allocFrameLocked finds a frame for key: a previously released frame, a new
// one while the shard is below capacity, or the next CLOCK victim. Caller
// holds s.mu; the returned frame is registered in the shard map with zero
// pins and the ref bit clear.
func (s *poolShard) allocFrameLocked(disk *DiskManager, key frameKey) (*frame, error) {
	var fr *frame
	switch {
	case len(s.free) > 0:
		fr = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
	case len(s.ring) < s.capacity:
		fr = &frame{shard: s, buf: make([]byte, PageSize)}
		s.ring = append(s.ring, fr)
	default:
		victim, err := s.evictLocked(disk)
		if err != nil {
			return nil, err
		}
		fr = victim
	}
	fr.key = key
	fr.dirty = false
	fr.ref = false
	s.frames[key] = fr
	return fr, nil
}

// releaseFrameLocked drops a frame whose fill failed (read error): the page
// never became visible, so the frame goes back on the free list.
func (s *poolShard) releaseFrameLocked(fr *frame) {
	delete(s.frames, fr.key)
	fr.dirty = false
	fr.ref = false
	s.free = append(s.free, fr)
	s.cond.Signal()
}

// evictLocked runs the CLOCK hand until it finds an unpinned frame with a
// clear reference bit, writing the victim back if dirty and returning its
// frame for reuse (the page buffer is recycled, so steady-state misses do
// not allocate). Two full sweeps without a victim means every frame is
// pinned: ErrPoolExhausted.
func (s *poolShard) evictLocked(disk *DiskManager) (*frame, error) {
	for i := 0; i < 2*len(s.ring); i++ {
		fr := s.ring[s.hand]
		s.hand++
		if s.hand == len(s.ring) {
			s.hand = 0
		}
		if fr.pins > 0 {
			continue
		}
		if fr.ref {
			fr.ref = false // second chance
			continue
		}
		if fr.dirty {
			if err := disk.WritePage(fr.key.file, fr.key.page, fr.buf); err != nil {
				return nil, err
			}
		}
		delete(s.frames, fr.key)
		s.evictions++
		return fr, nil
	}
	return nil, fmt.Errorf("storage: all %d pages of shard pinned: %w", s.capacity, ErrPoolExhausted)
}

func (s *poolShard) unpin(fr *frame, dirty bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fr.pins <= 0 {
		panic("storage: unpin of unpinned page")
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
	if fr.pins == 0 {
		// A fetcher may be blocked on shard exhaustion; this frame is now an
		// eviction candidate.
		s.cond.Signal()
	}
}

// Flush writes back all dirty pages (pinned or not) without evicting them.
func (bp *BufferPool) Flush() error {
	for _, s := range bp.shards {
		s.mu.Lock()
		for _, fr := range s.frames {
			if fr.dirty {
				if err := bp.disk.WritePage(fr.key.file, fr.key.page, fr.buf); err != nil {
					s.mu.Unlock()
					return err
				}
				fr.dirty = false
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// Reset flushes dirty pages and drops every cached page, simulating a cold
// cache (the paper measures all executions cold). It returns an error if any
// page is still pinned. All shard locks are held for the duration, so the
// reset is atomic with respect to concurrent fetches.
func (bp *BufferPool) Reset() error {
	// Settle any in-flight prefetches first, so a read-ahead issued by the
	// previous query cannot land after the reset and silently warm the
	// supposedly cold cache.
	bp.DrainPrefetch()
	for _, s := range bp.shards {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range bp.shards {
			s.mu.Unlock()
		}
	}()
	for _, s := range bp.shards {
		for _, fr := range s.frames {
			if fr.pins > 0 {
				return fmt.Errorf("storage: Reset with pinned page %v", fr.key)
			}
		}
	}
	for _, s := range bp.shards {
		for _, fr := range s.frames {
			if fr.dirty {
				if err := bp.disk.WritePage(fr.key.file, fr.key.page, fr.buf); err != nil {
					return err
				}
			}
		}
		s.frames = make(map[frameKey]*frame, s.capacity)
		s.ring = s.ring[:0]
		s.free = s.free[:0]
		s.hand = 0
	}
	return nil
}

// Pinned returns the number of currently pinned frames. A query that has
// fully finished — successfully or not — must leave this at zero; the
// robustness tests assert it after every fault scenario.
func (bp *BufferPool) Pinned() int {
	n := 0
	for _, s := range bp.shards {
		s.mu.Lock()
		for _, fr := range s.frames {
			if fr.pins > 0 {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the pool counters: the atomic hit/miss
// counters plus the shard-local eviction counts merged on read.
func (bp *BufferPool) Stats() PoolStats {
	st := PoolStats{
		LogicalReads: bp.logicalReads.Load(),
		Hits:         bp.hits.Load(),
		Prefetched:   bp.prefetched.Load(),
	}
	for _, s := range bp.shards {
		s.mu.Lock()
		st.Evictions += s.evictions
		st.Waits += s.waits
		st.WaitTime += s.waitTime
		s.mu.Unlock()
	}
	return st
}

// ResetStats zeroes the pool counters.
func (bp *BufferPool) ResetStats() {
	bp.logicalReads.Store(0)
	bp.hits.Store(0)
	bp.prefetched.Store(0)
	for _, s := range bp.shards {
		s.mu.Lock()
		s.evictions = 0
		s.waits = 0
		s.waitTime = 0
		s.mu.Unlock()
	}
}
