package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestBufferPoolShardSplit(t *testing.T) {
	cases := []struct {
		capacity   int
		wantShards int
	}{
		{8, 1},     // minimum pool: one shard keeps all-pinned semantics exact
		{15, 1},    // splitting would drop a shard below minShardPages
		{16, 2},    // 2×8
		{64, 8},    // 8×8
		{128, 16},  // capped at maxPoolShards
		{8192, 16}, // default engine pool
		{100, 8},   // non-power-of-two capacity still splits
	}
	for _, c := range cases {
		d := NewDiskManager(testModel())
		bp := NewBufferPool(d, c.capacity)
		if bp.Shards() != c.wantShards {
			t.Errorf("capacity %d: Shards() = %d, want %d", c.capacity, bp.Shards(), c.wantShards)
		}
		sum := 0
		for _, s := range bp.shards {
			if s.capacity < minShardPages {
				t.Errorf("capacity %d: shard capacity %d below minimum %d", c.capacity, s.capacity, minShardPages)
			}
			sum += s.capacity
		}
		if sum != c.capacity {
			t.Errorf("capacity %d: shard capacities sum to %d", c.capacity, sum)
		}
	}
}

// TestBufferPoolConcurrentStress hammers one pool from many goroutines with
// fetches, re-pins, and dirty unpins through a pool far smaller than the page
// working set, so eviction, write-back, and the CLOCK hand all run under the
// race detector. Per-shard exhaustion is tolerated (pins are transient); any
// other error fails the test.
func TestBufferPoolConcurrentStress(t *testing.T) {
	d := NewDiskManager(testModel())
	bp := NewBufferPool(d, 64)
	f := d.CreateFile()
	const npages = 256
	for i := 0; i < npages; i++ {
		pp, err := bp.NewPage(f, PageTypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		pp.Page.InsertCell([]byte(fmt.Sprintf("page-%d", i)))
		pp.Unpin(true)
	}

	const workers = 8
	const opsPerWorker = 2000
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerWorker; i++ {
				pid := PageID(rng.Intn(npages))
				pp, err := bp.FetchPage(f, pid)
				if err != nil {
					if errors.Is(err, ErrPoolExhausted) {
						continue
					}
					errCh <- err
					return
				}
				if want := fmt.Sprintf("page-%d", pid); string(pp.Page.Cell(0)) != want {
					errCh <- fmt.Errorf("page %d content = %q, want %q", pid, pp.Page.Cell(0), want)
					pp.Unpin(false)
					return
				}
				pp.Unpin(rng.Intn(4) == 0) // occasional dirty unpin
			}
		}(int64(w))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if n := bp.Pinned(); n != 0 {
		t.Errorf("Pinned() = %d after all workers released", n)
	}
	st := bp.Stats()
	if st.LogicalReads < workers*opsPerWorker {
		t.Errorf("LogicalReads = %d, want >= %d", st.LogicalReads, workers*opsPerWorker)
	}
	if st.Hits > st.LogicalReads {
		t.Errorf("Hits %d exceeds LogicalReads %d", st.Hits, st.LogicalReads)
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestBufferPoolPinnedNeverEvicted pins one page in every shard, churns far
// more pages than the pool holds to force eviction sweeps through every
// shard, and verifies the pinned frames were never victimized: their content
// is intact and refetching them is a hit, not a disk read.
func TestBufferPoolPinnedNeverEvicted(t *testing.T) {
	d := NewDiskManager(testModel())
	bp := NewBufferPool(d, 64)
	f := d.CreateFile()

	// Hold a pin in every shard (the first page the shard receives).
	pinned := make(map[*poolShard]*PinnedPage)
	var pids []PageID
	for pid := PageID(0); len(pinned) < bp.Shards(); pid++ {
		pp, err := bp.NewPage(f, PageTypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		s := bp.shardFor(frameKey{f, pp.ID})
		if _, dup := pinned[s]; dup {
			pp.Unpin(true)
			continue
		}
		pp.Page.InsertCell([]byte(fmt.Sprintf("pinned-%d", pp.ID)))
		pinned[s] = pp
		pids = append(pids, pp.ID)
	}

	// Churn: allocate several pool-fulls of pages so every shard evicts.
	for i := 0; i < 4*bp.Capacity(); i++ {
		pp, err := bp.NewPage(f, PageTypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		pp.Unpin(true)
	}
	if bp.Stats().Evictions == 0 {
		t.Fatal("churn caused no evictions")
	}

	for _, pp := range pinned {
		if want := fmt.Sprintf("pinned-%d", pp.ID); string(pp.Page.Cell(0)) != want {
			t.Errorf("pinned page %d content = %q, want %q", pp.ID, pp.Page.Cell(0), want)
		}
		pp.Unpin(true)
	}
	d.ResetStats()
	before := bp.Stats()
	for _, pid := range pids {
		pp, err := bp.FetchPage(f, pid)
		if err != nil {
			t.Fatal(err)
		}
		pp.Unpin(false)
	}
	if got := bp.Stats().Sub(before); got.Hits != int64(len(pids)) {
		t.Errorf("refetch of %d pinned pages: %d hits (pinned page was evicted)", len(pids), got.Hits)
	}
	if reads := d.Stats().PhysicalReads; reads != 0 {
		t.Errorf("refetch of pinned pages hit disk %d times", reads)
	}
}

// TestBufferPoolStatsMerge checks that the merged PoolStats equal the sum of
// the per-shard counters plus the pool-level atomics.
func TestBufferPoolStatsMerge(t *testing.T) {
	d := NewDiskManager(testModel())
	bp := NewBufferPool(d, 16)
	f := d.CreateFile()
	for i := 0; i < 48; i++ { // 3 pool-fulls: guaranteed evictions
		pp, err := bp.NewPage(f, PageTypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		pp.Unpin(true)
	}
	for i := 0; i < 10; i++ { // refetch the tail: all hits
		pp, err := bp.FetchPage(f, PageID(40+i%8))
		if err != nil {
			t.Fatal(err)
		}
		pp.Unpin(false)
	}

	st := bp.Stats()
	var shardEvictions int64
	for _, s := range bp.shards {
		s.mu.Lock()
		shardEvictions += s.evictions
		s.mu.Unlock()
	}
	if st.Evictions != shardEvictions {
		t.Errorf("Stats().Evictions = %d, sum of shards = %d", st.Evictions, shardEvictions)
	}
	if st.LogicalReads != bp.logicalReads.Load() || st.Hits != bp.hits.Load() {
		t.Errorf("Stats() = %+v, atomics = %d/%d", st, bp.logicalReads.Load(), bp.hits.Load())
	}
	if st.LogicalReads != 10 {
		t.Errorf("LogicalReads = %d, want 10 (NewPage does not count as a read)", st.LogicalReads)
	}

	bp.ResetStats()
	if got := bp.Stats(); got != (PoolStats{}) {
		t.Errorf("Stats after ResetStats = %+v", got)
	}
}
