package storage

import (
	"fmt"
	"testing"
)

// preparePages creates n pages with recognizable payloads and returns their
// ids, leaving the pool cold (all pages flushed and dropped).
func preparePages(t *testing.T, bp *BufferPool, f FileID, n int) []PageID {
	t.Helper()
	pids := make([]PageID, 0, n)
	for i := 0; i < n; i++ {
		pp, err := bp.NewPage(f, PageTypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		pp.Page.InsertCell([]byte(fmt.Sprintf("page-%d", i)))
		pids = append(pids, pp.ID)
		pp.Unpin(true)
	}
	if err := bp.Reset(); err != nil {
		t.Fatal(err)
	}
	bp.ResetStats()
	return pids
}

func TestPrefetchWarmsPool(t *testing.T) {
	bp, f := newPoolForTest(64)
	pids := preparePages(t, bp, f, 16)

	bp.Prefetch(f, pids)
	bp.DrainPrefetch()

	st := bp.Stats()
	if st.Prefetched == 0 {
		t.Fatalf("Prefetched = 0, want > 0")
	}
	if st.LogicalReads != 0 || st.Hits != 0 {
		t.Errorf("prefetch polluted demand counters: reads=%d hits=%d", st.LogicalReads, st.Hits)
	}

	// Every prefetched page must now be a demand hit.
	for i, pid := range pids {
		pp, err := bp.FetchPage(f, pid)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("page-%d", i)
		if string(pp.Page.Cell(0)) != want {
			t.Errorf("pid %d: cell = %q, want %q", pid, pp.Page.Cell(0), want)
		}
		pp.Unpin(false)
	}
	st = bp.Stats()
	if st.Hits != int64(len(pids)) {
		t.Errorf("Hits = %d, want %d (all pages were prefetched)", st.Hits, len(pids))
	}
}

func TestPrefetchSkipsResidentPages(t *testing.T) {
	bp, f := newPoolForTest(64)
	pids := preparePages(t, bp, f, 4)
	for _, pid := range pids {
		pp, err := bp.FetchPage(f, pid)
		if err != nil {
			t.Fatal(err)
		}
		pp.Unpin(false)
	}
	before := bp.Stats().Prefetched
	bp.Prefetch(f, pids)
	bp.DrainPrefetch()
	if got := bp.Stats().Prefetched - before; got != 0 {
		t.Errorf("Prefetched %d resident pages, want 0", got)
	}
}

func TestPrefetchNeverEvictsPinned(t *testing.T) {
	// A pool sized so one shard fills up: pin everything, then prefetch a
	// flood of other pages. The pinned frames must survive and the prefetch
	// must degrade to a no-op rather than erroring.
	bp, f := newPoolForTest(8)
	pids := preparePages(t, bp, f, 32)

	pinned := make([]*PinnedPage, 0, 8)
	for _, pid := range pids[:8] {
		pp, err := bp.FetchPage(f, pid)
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, pp)
	}
	bp.Prefetch(f, pids[8:])
	bp.DrainPrefetch()
	for i, pp := range pinned {
		want := fmt.Sprintf("page-%d", i)
		if string(pp.Page.Cell(0)) != want {
			t.Errorf("pinned page %d clobbered: cell = %q", pp.ID, pp.Page.Cell(0))
		}
		pp.Unpin(false)
	}
	if got := bp.Pinned(); got != 0 {
		t.Errorf("Pinned = %d after unpinning all", got)
	}
}

func TestPrefetchWindowBoundsInflight(t *testing.T) {
	bp, f := newPoolForTest(512)
	pids := preparePages(t, bp, f, 400)
	// All 400 pages land in at most 16 shards with a window of 8 each, so a
	// single burst can admit at most 16*8 reads; the rest must be dropped,
	// not queued.
	bp.Prefetch(f, pids)
	bp.DrainPrefetch()
	if got := bp.Stats().Prefetched; got > int64(len(bp.shards)*prefetchWindow) {
		t.Errorf("Prefetched = %d, want <= %d (window per shard)", got, len(bp.shards)*prefetchWindow)
	}
}

func TestHitRatioZeroWithoutLogicalReads(t *testing.T) {
	// Regression: a query whose pages were all brought in by the prefetcher
	// but which was cancelled before touching any of them has a stats window
	// with zero logical reads; HitRatio must report 0, not NaN.
	bp, f := newPoolForTest(64)
	pids := preparePages(t, bp, f, 8)
	before := bp.Stats()
	bp.Prefetch(f, pids)
	bp.DrainPrefetch()
	window := bp.Stats().Sub(before)
	if window.LogicalReads != 0 {
		t.Fatalf("LogicalReads = %d, want 0 (prefetch only)", window.LogicalReads)
	}
	if got := window.HitRatio(); got != 0 {
		t.Errorf("HitRatio = %v, want 0", got)
	}
	if window.Prefetched == 0 {
		t.Errorf("Prefetched = 0, want > 0")
	}

	// And a normal window still reports a real ratio.
	before = bp.Stats()
	for _, pid := range pids[:4] {
		pp, err := bp.FetchPage(f, pid)
		if err != nil {
			t.Fatal(err)
		}
		pp.Unpin(false)
	}
	window = bp.Stats().Sub(before)
	if got := window.HitRatio(); got != 1 {
		t.Errorf("HitRatio = %v, want 1 (all prefetched)", got)
	}
}
