package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEmitFinishRoundtrip(t *testing.T) {
	r := NewRecorder(16)
	open := Span{Op: 0, Kind: KindOpen, Start: 1, End: 2}
	life := Span{Op: 0, Kind: KindOperator, Start: 1, End: 5, N: 10}
	r.Emit(open)
	r.Emit(life)
	tr := r.Finish()
	if len(tr.Spans) != 3 { // two emitted + the query span
		t.Fatalf("got %d spans, want 3", len(tr.Spans))
	}
	if tr.Spans[0] != open || tr.Spans[1] != life {
		t.Errorf("spans not preserved in order: %+v", tr.Spans)
	}
	q := tr.Spans[2]
	if q.Kind != KindQuery || q.Op != NoOp || q.Start != 0 || q.End != tr.Wall {
		t.Errorf("query span malformed: %+v (wall %v)", q, tr.Wall)
	}
	if got, ok := tr.OperatorSpan(0); !ok || got != life {
		t.Errorf("OperatorSpan(0) = %+v, %v", got, ok)
	}
	if _, ok := tr.OperatorSpan(7); ok {
		t.Error("OperatorSpan(7) found a span for an absent operator")
	}
	if got := tr.OperatorCount(); got != 1 {
		t.Errorf("OperatorCount = %d, want 1", got)
	}
}

func TestDropNewestWhenFull(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Emit(Span{Op: int32(i), Kind: KindOpen})
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	tr := r.Finish()
	// The query span is also dropped once the buffer is full.
	if len(tr.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(tr.Spans))
	}
	if tr.Spans[0].Op != 0 || tr.Spans[1].Op != 1 {
		t.Errorf("retained spans are not the oldest: %+v", tr.Spans)
	}
	if tr.Dropped != 4 {
		t.Errorf("trace Dropped = %d, want 4", tr.Dropped)
	}
	if err := tr.Validate(-1); err == nil {
		t.Error("Validate accepted a trace with dropped spans")
	}
}

func TestDefaultCapacity(t *testing.T) {
	for _, c := range []int{0, -3} {
		r := NewRecorder(c)
		if len(r.spans) != DefaultCapacity {
			t.Errorf("NewRecorder(%d): capacity %d, want %d", c, len(r.spans), DefaultCapacity)
		}
	}
}

// wellFormed builds a trace with two operators (one with a partition
// span) plus admission and storage events, every interval nested
// properly.
func wellFormed() *Recorder {
	r := NewRecorder(64)
	r.Emit(Span{Op: NoOp, Kind: KindAdmission, Start: 0, End: 1})
	r.Emit(Span{Op: 0, Kind: KindOperator, Start: 2, End: 20, N: 100})
	r.Emit(Span{Op: 0, Kind: KindOpen, Start: 2, End: 3})
	r.Emit(Span{Op: 0, Kind: KindNext, Start: 4, End: 18, N: 100, Calls: 7, Total: 12})
	r.Emit(Span{Op: 0, Kind: KindClose, Start: 19, End: 20})
	r.Emit(Span{Op: 1, Kind: KindOperator, Start: 3, End: 18, N: 100})
	r.Emit(Span{Op: 1, Kind: KindOpen, Start: 3, End: 4})
	r.Emit(Span{Op: 1, Kind: KindPartition, Start: 5, End: 15, N: 50})
	r.Emit(Span{Op: 1, Kind: KindPartition, Start: 5, End: 16, N: 50})
	r.Emit(Span{Op: 1, Kind: KindClose, Start: 17, End: 18})
	r.Emit(Span{Op: NoOp, Kind: KindPinWait, Start: 20, End: 20, N: 3, Total: 5})
	r.Emit(Span{Op: NoOp, Kind: KindReadRetry, Start: 20, End: 20, N: 1})
	r.Emit(Span{Op: NoOp, Kind: KindPrefetch, Start: 20, End: 20, N: 64})
	return r
}

func TestValidateAccepts(t *testing.T) {
	tr := wellFormed().Finish()
	if err := tr.Validate(2); err != nil {
		t.Fatalf("Validate rejected a well-formed trace: %v", err)
	}
	if err := tr.Validate(-1); err != nil {
		t.Fatalf("Validate(-1) rejected a well-formed trace: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		emit    func(r *Recorder)
		opCount int
		want    string
	}{
		{"wrong operator count", func(r *Recorder) {}, 3, "plan has 3 operators"},
		{"duplicate lifetime", func(r *Recorder) {
			r.Emit(Span{Op: 0, Kind: KindOperator, Start: 2, End: 20})
		}, 2, "lifetime spans"},
		{"double close", func(r *Recorder) {
			r.Emit(Span{Op: 0, Kind: KindClose, Start: 19, End: 20})
		}, 2, "at most 1"},
		{"orphan phase", func(r *Recorder) {
			r.Emit(Span{Op: 9, Kind: KindNext, Start: 4, End: 5})
		}, 2, "0 lifetime spans"},
		{"escapes parent", func(r *Recorder) {
			r.Emit(Span{Op: 2, Kind: KindOperator, Start: 5, End: 10})
			r.Emit(Span{Op: 2, Kind: KindPartition, Start: 5, End: 12})
		}, 3, "not nested in operator lifetime"},
		{"inverted interval", func(r *Recorder) {
			r.Emit(Span{Op: NoOp, Kind: KindPinWait, Start: 9, End: 3})
		}, 2, "outside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := wellFormed()
			tc.emit(r)
			tr := r.Finish()
			err := tr.Validate(tc.opCount)
			if err == nil {
				t.Fatal("Validate accepted a malformed trace")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateRequiresQuerySpan(t *testing.T) {
	tr := &Trace{Wall: 100, Spans: []Span{{Op: 0, Kind: KindOperator, Start: 0, End: 5}}}
	if err := tr.Validate(-1); err == nil || !strings.Contains(err.Error(), "no query span") {
		t.Fatalf("Validate = %v, want missing-query-span error", err)
	}
}

// TestConcurrentEmit hammers one recorder from many goroutines — the
// parallel-scan sharing pattern — and checks that exactly min(emitted,
// capacity) spans land, the rest are counted as dropped, and no slot is
// written twice (every retained span is a valid emission, checked by a
// per-writer payload). Run under -race this also proves the claim path
// has no write-write races.
func TestConcurrentEmit(t *testing.T) {
	const writers, perWriter, capacity = 8, 500, 1024
	r := NewRecorder(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Emit(Span{Op: int32(w), Kind: KindPartition, N: int64(i + 1)})
			}
		}(w)
	}
	wg.Wait()
	tr := r.Finish()
	total := writers * perWriter
	if len(tr.Spans) != capacity {
		t.Fatalf("retained %d spans, want %d", len(tr.Spans), capacity)
	}
	// total - capacity emissions dropped, plus the query span Finish tried
	// to emit into the full buffer.
	if tr.Dropped != int64(total-capacity)+1 {
		t.Errorf("Dropped = %d, want %d", tr.Dropped, total-capacity+1)
	}
	seen := make(map[int32]map[int64]bool)
	for i, s := range tr.Spans {
		if s.Kind != KindPartition || s.Op < 0 || s.Op >= writers || s.N < 1 || s.N > perWriter {
			t.Fatalf("span %d is not a valid emission: %+v", i, s)
		}
		if seen[s.Op] == nil {
			seen[s.Op] = make(map[int64]bool)
		}
		if seen[s.Op][s.N] {
			t.Fatalf("span %+v retained twice — slot reuse", s)
		}
		seen[s.Op][s.N] = true
	}
}

// TestEmitDoesNotAllocate pins the alloc-free guarantee the hot path
// depends on.
func TestEmitDoesNotAllocate(t *testing.T) {
	r := NewRecorder(1 << 16)
	span := Span{Op: 3, Kind: KindNext, Start: 1, End: 2, N: 5}
	if avg := testing.AllocsPerRun(1000, func() { r.Emit(span) }); avg != 0 {
		t.Fatalf("Emit allocates %.1f times per call, want 0", avg)
	}
}

func TestRenderListsEverySection(t *testing.T) {
	tr := wellFormed().Finish()
	out := tr.Render()
	for _, want := range []string{"query", "op 0:", "op 1:", "operator", "open", "next", "close", "partition", "admission", "pin-wait", "read-retry", "prefetch", "calls=7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	r := NewRecorder(1)
	r.Emit(Span{Op: NoOp, Kind: KindAdmission})
	r.Emit(Span{Op: 0, Kind: KindOpen})
	if out := r.Finish().Render(); !strings.Contains(out, "dropped") {
		t.Errorf("Render does not report dropped spans:\n%s", out)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindQuery, KindOperator, KindOpen, KindClose, KindNext,
		KindPartition, KindAdmission, KindPinWait, KindReadRetry, KindPrefetch}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.Contains(s, "kind(") || seen[s] {
			t.Errorf("Kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind renders as %q", got)
	}
}

func TestNowAdvances(t *testing.T) {
	r := NewRecorder(4)
	a := r.Now()
	time.Sleep(time.Millisecond)
	if b := r.Now(); b <= a {
		t.Errorf("Now did not advance: %v then %v", a, b)
	}
}
