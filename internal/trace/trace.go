// Package trace records per-query span trees aligned with the operator
// tree. A Recorder is created per query execution; operators, parallel
// workers, and the engine emit fixed-size Span values into a preallocated
// lock-free buffer, and Finish freezes the buffer into a Trace for
// rendering, slow-query capture, or structural validation.
//
// The design goals, in order:
//
//  1. Zero cost when disabled. Every emission site guards on a nil
//     *Recorder, so the untraced path is a single pointer compare.
//  2. Alloc-free when enabled. Span holds no pointers and the buffer is
//     sized up front, so emitting a span never allocates; a full buffer
//     drops the newest span and counts it rather than growing.
//  3. Safe concurrent emission. Parallel-scan workers share the query's
//     recorder; slots are claimed with a single atomic add and never
//     reused, so no two writers ever touch the same slot.
//
// Spans carry operator ids, not pointers: the engine aligns spans with the
// operator-stats tree (which carries the same ids) at render time, so the
// hot path never builds tree structure.
package trace

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Kind classifies a span.
type Kind uint8

const (
	// KindQuery is the root interval covering the whole execution,
	// admission wait included. Exactly one per trace.
	KindQuery Kind = iota
	// KindOperator is an operator's lifetime: Open entry through Close
	// return. Exactly one per operator.
	KindOperator
	// KindOpen and KindClose are the operator's setup and teardown
	// intervals, nested within its KindOperator span.
	KindOpen
	KindClose
	// KindNext summarizes the operator's row- or batch-production phase:
	// the interval from its first Next (or NextBatch) call to its last,
	// with N the rows produced, Total the time spent inside the operator's
	// Next across all calls, and Calls the call count. One summary span —
	// not one span per call — keeps trace size proportional to the plan,
	// not the data.
	KindNext
	// KindPartition is one parallel worker's drain of one partition,
	// nested within the parallel operator's span. N is rows emitted.
	KindPartition
	// KindAdmission is the time spent queued at the admission gate before
	// execution began. Op is NoOp.
	KindAdmission
	// KindPinWait, KindReadRetry, and KindPrefetch are storage-side point
	// events synthesized from buffer-pool and disk stat deltas after the
	// run: N is the event count, Total the time attributed to it (pin
	// waits only — retries and prefetches are charged to simulated IO).
	// Under intra-query parallelism the per-event intervals overlap
	// arbitrarily, so they are reported as aggregates rather than
	// fabricated intervals.
	KindPinWait
	KindReadRetry
	KindPrefetch
)

// String names the kind for rendering.
func (k Kind) String() string {
	switch k {
	case KindQuery:
		return "query"
	case KindOperator:
		return "operator"
	case KindOpen:
		return "open"
	case KindClose:
		return "close"
	case KindNext:
		return "next"
	case KindPartition:
		return "partition"
	case KindAdmission:
		return "admission"
	case KindPinWait:
		return "pin-wait"
	case KindReadRetry:
		return "read-retry"
	case KindPrefetch:
		return "prefetch"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// NoOp marks a span that is not tied to an operator (query, admission,
// storage events).
const NoOp int32 = -1

// Span is one recorded event. Start and End are offsets from the
// recorder's epoch; a point event has End == Start and carries its
// aggregate in N/Total. Span deliberately holds no pointers so emitting
// one never allocates and a full buffer of them stays off the GC scan
// list.
type Span struct {
	Op    int32         // operator id, or NoOp
	Kind  Kind          // what the interval measures
	Start time.Duration // offset from trace epoch
	End   time.Duration // offset from trace epoch; == Start for point events
	N     int64         // rows, calls, or event count, per Kind
	Calls int64         // Next/NextBatch invocations (KindNext only)
	Total time.Duration // aggregate time for summary/point spans
}

// DefaultCapacity bounds a recorder when the caller does not choose one.
// Traces are proportional to plan size (~4 spans per operator plus a
// handful of engine spans), so 4096 leaves room for three orders of
// magnitude over a typical plan before anything is dropped.
const DefaultCapacity = 4096

// Recorder collects spans for one query execution. The zero value is not
// usable; a nil *Recorder is the "tracing off" state and is what every
// emission site must check for.
type Recorder struct {
	epoch   time.Time
	spans   []Span
	claimed atomic.Int64 // next free slot; may run past len(spans)
	dropped atomic.Int64
}

// NewRecorder returns a recorder whose epoch is now and whose buffer
// holds capacity spans (DefaultCapacity if capacity <= 0). All span
// memory is allocated here, once.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{epoch: time.Now(), spans: make([]Span, capacity)}
}

// Now returns the current offset from the trace epoch.
func (r *Recorder) Now() time.Duration {
	return time.Since(r.epoch)
}

// Emit records one span. Safe for concurrent use; never allocates. When
// the buffer is full the span is dropped and counted — dropping the
// newest rather than wrapping keeps every retained span's slot writable
// by exactly one goroutine, which a wrap-around ring cannot guarantee
// without locks.
func (r *Recorder) Emit(s Span) {
	idx := r.claimed.Add(1) - 1
	if idx >= int64(len(r.spans)) {
		r.dropped.Add(1)
		return
	}
	r.spans[idx] = s
}

// Dropped reports how many spans were discarded because the buffer was
// full.
func (r *Recorder) Dropped() int64 { return r.dropped.Load() }

// Finish emits the root query span and freezes the recorder into a
// Trace. The recorder must not be emitted to afterwards; Finish is not
// safe to run concurrently with Emit.
func (r *Recorder) Finish() *Trace {
	wall := r.Now()
	r.Emit(Span{Op: NoOp, Kind: KindQuery, Start: 0, End: wall})
	n := r.claimed.Load()
	if n > int64(len(r.spans)) {
		n = int64(len(r.spans))
	}
	return &Trace{
		Epoch:   r.epoch,
		Wall:    wall,
		Spans:   r.spans[:n],
		Dropped: r.dropped.Load(),
	}
}

// Trace is a finished, immutable recording.
type Trace struct {
	Epoch   time.Time
	Wall    time.Duration
	Spans   []Span
	Dropped int64
}

// OperatorSpan returns the lifetime span for operator op, or false.
func (t *Trace) OperatorSpan(op int32) (Span, bool) {
	for _, s := range t.Spans {
		if s.Kind == KindOperator && s.Op == op {
			return s, true
		}
	}
	return Span{}, false
}

// ByKind returns the spans of the given kind in emission order.
func (t *Trace) ByKind(k Kind) []Span {
	var out []Span
	for _, s := range t.Spans {
		if s.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

// OperatorCount reports how many distinct operators have lifetime spans.
func (t *Trace) OperatorCount() int {
	n := 0
	for _, s := range t.Spans {
		if s.Kind == KindOperator {
			n++
		}
	}
	return n
}

// Validate checks the structural invariants a complete trace must obey:
//
//   - exactly one query span, covering every other span's interval;
//   - per operator: exactly one lifetime span, at most one open, at most
//     one close, at most one next summary, each nested within the
//     lifetime interval;
//   - partition spans nested within their operator's lifetime;
//   - every interval well-ordered (Start <= End) and within [0, Wall].
//
// opCount, when >= 0, additionally requires exactly that many operator
// lifetime spans — callers take it from the plan so a trace cannot
// silently miss an operator. Validation requires a complete trace; a
// recorder that dropped spans cannot be validated.
func (t *Trace) Validate(opCount int) error {
	if t.Dropped > 0 {
		return fmt.Errorf("trace dropped %d spans; structural validation needs a complete trace", t.Dropped)
	}
	var query *Span
	type opAgg struct{ life, open, close_, next int }
	ops := make(map[int32]*opAgg)
	lifetimes := make(map[int32]Span)
	for i := range t.Spans {
		s := &t.Spans[i]
		if s.Start < 0 || s.End < s.Start || s.End > t.Wall {
			return fmt.Errorf("span %d (%s op %d): interval [%v, %v] outside [0, %v]",
				i, s.Kind, s.Op, s.Start, s.End, t.Wall)
		}
		switch s.Kind {
		case KindQuery:
			if query != nil {
				return fmt.Errorf("multiple query spans")
			}
			query = s
		case KindOperator, KindOpen, KindClose, KindNext:
			a := ops[s.Op]
			if a == nil {
				a = &opAgg{}
				ops[s.Op] = a
			}
			switch s.Kind {
			case KindOperator:
				a.life++
				lifetimes[s.Op] = *s
			case KindOpen:
				a.open++
			case KindClose:
				a.close_++
			case KindNext:
				a.next++
			}
		}
	}
	if query == nil {
		return fmt.Errorf("no query span")
	}
	nOps := 0
	for op, a := range ops {
		if a.life != 1 {
			return fmt.Errorf("operator %d: %d lifetime spans, want exactly 1", op, a.life)
		}
		nOps++
		if a.open > 1 || a.close_ > 1 || a.next > 1 {
			return fmt.Errorf("operator %d: open=%d close=%d next=%d, want at most 1 each",
				op, a.open, a.close_, a.next)
		}
	}
	if opCount >= 0 && nOps != opCount {
		return fmt.Errorf("trace has %d operator spans, plan has %d operators", nOps, opCount)
	}
	for i := range t.Spans {
		s := &t.Spans[i]
		switch s.Kind {
		case KindQuery:
			continue
		case KindOpen, KindClose, KindNext, KindPartition:
			life, ok := lifetimes[s.Op]
			if !ok {
				return fmt.Errorf("span %d (%s): operator %d has no lifetime span", i, s.Kind, s.Op)
			}
			if s.Start < life.Start || s.End > life.End {
				return fmt.Errorf("span %d (%s op %d): [%v, %v] not nested in operator lifetime [%v, %v]",
					i, s.Kind, s.Op, s.Start, s.End, life.Start, life.End)
			}
		}
		if s.Start < query.Start || s.End > query.End {
			return fmt.Errorf("span %d (%s op %d): [%v, %v] not nested in query span [%v, %v]",
				i, s.Kind, s.Op, s.Start, s.End, query.Start, query.End)
		}
	}
	return nil
}

// Render writes a human-readable listing: the query span, then each
// operator's lifetime with its phases indented beneath it in id order,
// then engine and storage events. It is a debugging view — EXPLAIN
// ANALYZE is the user-facing rendering.
func (t *Trace) Render() string {
	var b []byte
	appendSpan := func(indent string, s Span) {
		b = append(b, indent...)
		b = fmt.Appendf(b, "%-10s", s.Kind)
		b = fmt.Appendf(b, " [%8.3fms %8.3fms]", ms(s.Start), ms(s.End))
		if s.N != 0 {
			b = fmt.Appendf(b, " n=%d", s.N)
		}
		if s.Calls != 0 {
			b = fmt.Appendf(b, " calls=%d", s.Calls)
		}
		if s.Total != 0 {
			b = fmt.Appendf(b, " total=%.3fms", ms(s.Total))
		}
		b = append(b, '\n')
	}
	for _, s := range t.Spans {
		if s.Kind == KindQuery {
			appendSpan("", s)
		}
	}
	var opIDs []int32
	perOp := make(map[int32][]Span)
	for _, s := range t.Spans {
		switch s.Kind {
		case KindOperator, KindOpen, KindNext, KindClose, KindPartition:
			if _, ok := perOp[s.Op]; !ok {
				opIDs = append(opIDs, s.Op)
			}
			perOp[s.Op] = append(perOp[s.Op], s)
		}
	}
	sort.Slice(opIDs, func(i, j int) bool { return opIDs[i] < opIDs[j] })
	for _, op := range opIDs {
		spans := perOp[op]
		sort.SliceStable(spans, func(i, j int) bool {
			// Lifetime first, then by start.
			if (spans[i].Kind == KindOperator) != (spans[j].Kind == KindOperator) {
				return spans[i].Kind == KindOperator
			}
			return spans[i].Start < spans[j].Start
		})
		for _, s := range spans {
			if s.Kind == KindOperator {
				b = fmt.Appendf(b, "  op %d:\n", op)
				appendSpan("    ", s)
			} else {
				appendSpan("      ", s)
			}
		}
	}
	for _, s := range t.Spans {
		switch s.Kind {
		case KindAdmission, KindPinWait, KindReadRetry, KindPrefetch:
			appendSpan("  ", s)
		}
	}
	if t.Dropped > 0 {
		b = fmt.Appendf(b, "  (%d spans dropped)\n", t.Dropped)
	}
	return string(b)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
