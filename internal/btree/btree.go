// Package btree implements a page-based B+tree on top of the buffer pool.
//
// Keys and values are opaque byte strings; keys are compared with
// bytes.Compare, so callers use the order-preserving encoding from
// internal/tuple. The tree serves two roles in the engine:
//
//   - clustered tables: key = encoded clustering key, value = encoded row;
//     the (leaf page, slot) of a row is its RID, stable after bulk load;
//   - secondary indexes: key = encoded column values with an RID suffix for
//     uniqueness, value = empty.
//
// Leaves are linked left to right, so full scans of a bulk-loaded tree read
// pages in allocation order (sequential I/O), while trees grown by random
// Insert calls develop fragmentation (random I/O on scan) — the same
// behaviour that makes distinct page counts matter on real systems.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"pagefeedback/internal/storage"
)

// ErrDuplicateKey is returned by Insert when the exact key already exists.
var ErrDuplicateKey = errors.New("btree: duplicate key")

// ErrKeyNotFound is returned by Delete when the key does not exist.
var ErrKeyNotFound = errors.New("btree: key not found")

// metaPageID is the fixed location of the tree's metadata page.
const metaPageID storage.PageID = 0

// Tree is a B+tree bound to one file of a buffer pool. It is not safe for
// concurrent use; the engine serializes access per the paper's single-query
// experiments.
type Tree struct {
	pool   *storage.BufferPool
	file   storage.FileID
	root   storage.PageID
	height int // 1 = root is a leaf
	// Statistics maintained for the catalog and cost model.
	leafCount  int64
	entryCount int64
}

// Create formats a new empty tree in a fresh file of pool and returns it.
func Create(pool *storage.BufferPool) (*Tree, error) {
	file := pool.Disk().CreateFile()
	meta, err := pool.NewPage(file, storage.PageTypeMeta)
	if err != nil {
		return nil, err
	}
	if meta.ID != metaPageID {
		meta.Unpin(false)
		return nil, fmt.Errorf("btree: meta page allocated at %d", meta.ID)
	}
	meta.Unpin(true)
	rootPage, err := pool.NewPage(file, storage.PageTypeBTreeLeaf)
	if err != nil {
		return nil, err
	}
	defer rootPage.Unpin(true)
	t := &Tree{pool: pool, file: file, root: rootPage.ID, height: 1, leafCount: 1}
	if err := t.saveMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree from file.
func Open(pool *storage.BufferPool, file storage.FileID) (*Tree, error) {
	meta, err := pool.FetchPage(file, metaPageID)
	if err != nil {
		return nil, err
	}
	defer meta.Unpin(false)
	if meta.Page.Type() != storage.PageTypeMeta {
		return nil, fmt.Errorf("btree: file %d page 0 is not a meta page", file)
	}
	t := &Tree{
		pool:   pool,
		file:   file,
		root:   storage.PageID(meta.Page.Extra()),
		height: int(meta.Page.Extra2()),
	}
	if cell := meta.Page.Cell(0); len(cell) >= 16 {
		t.leafCount = int64(binary.LittleEndian.Uint64(cell))
		t.entryCount = int64(binary.LittleEndian.Uint64(cell[8:]))
	}
	return t, nil
}

// File returns the file backing the tree.
func (t *Tree) File() storage.FileID { return t.file }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// LeafPages returns the number of leaf pages.
func (t *Tree) LeafPages() int64 { return t.leafCount }

// Entries returns the number of key/value entries.
func (t *Tree) Entries() int64 { return t.entryCount }

func (t *Tree) saveMeta() error {
	meta, err := t.pool.FetchPage(t.file, metaPageID)
	if err != nil {
		return err
	}
	defer meta.Unpin(true)
	meta.Page.SetExtra(uint32(t.root))
	meta.Page.SetExtra2(uint32(t.height))
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(t.leafCount))
	binary.LittleEndian.PutUint64(buf[8:], uint64(t.entryCount))
	if meta.Page.NumSlots() == 0 {
		if _, ok := meta.Page.InsertCell(buf[:]); !ok {
			return errors.New("btree: meta page full")
		}
	} else {
		copy(meta.Page.Cell(0), buf[:])
	}
	return nil
}

// Cell layouts.
//
// Leaf cell:  [keyLen uint16][key][value]
// Inner cell: [keyLen uint16][key][child uint32]
//
// Inner-node convention: cell i holds (sepKey_i, child_i) where sepKey_i is
// the smallest key that was in child_i when the cell was created. Search
// descends into the child of the largest i with sepKey_i <= searchKey
// (child 0 if searchKey precedes every separator).

func leafCell(key, value []byte) []byte {
	c := make([]byte, 2+len(key)+len(value))
	binary.LittleEndian.PutUint16(c, uint16(len(key)))
	copy(c[2:], key)
	copy(c[2+len(key):], value)
	return c
}

func innerCell(key []byte, child storage.PageID) []byte {
	c := make([]byte, 2+len(key)+4)
	binary.LittleEndian.PutUint16(c, uint16(len(key)))
	copy(c[2:], key)
	binary.LittleEndian.PutUint32(c[2+len(key):], uint32(child))
	return c
}

func cellKey(cell []byte) []byte {
	n := binary.LittleEndian.Uint16(cell)
	return cell[2 : 2+n]
}

func leafCellValue(cell []byte) []byte {
	n := binary.LittleEndian.Uint16(cell)
	return cell[2+n:]
}

func innerCellChild(cell []byte) storage.PageID {
	n := binary.LittleEndian.Uint16(cell)
	return storage.PageID(binary.LittleEndian.Uint32(cell[2+n:]))
}

// findSlot binary-searches the page for key. It returns the index of the
// first slot whose key is >= key, and whether that slot's key equals key.
func findSlot(p *storage.Page, key []byte) (int, bool) {
	lo, hi := 0, p.NumSlots()
	for lo < hi {
		mid := (lo + hi) / 2
		cmp := bytes.Compare(cellKey(p.Cell(storage.SlotID(mid))), key)
		if cmp < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	exact := lo < p.NumSlots() && bytes.Equal(cellKey(p.Cell(storage.SlotID(lo))), key)
	return lo, exact
}

// childIndex returns the slot of the inner cell to descend into for key.
func childIndex(p *storage.Page, key []byte) int {
	// Largest i with sepKey_i <= key; 0 if key precedes everything.
	lo, hi := 0, p.NumSlots()
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(cellKey(p.Cell(storage.SlotID(mid))), key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// descend walks from the root to the leaf that should contain key, returning
// the pinned leaf and, when recordPath is true, the (pid, childSlot) pairs of
// the inner nodes visited.
type pathStep struct {
	pid  storage.PageID
	slot int
}

func (t *Tree) descend(key []byte, recordPath bool) (*storage.PinnedPage, []pathStep, error) {
	var path []pathStep
	pid := t.root
	for level := t.height; level > 1; level-- {
		child, idx, err := t.descendStep(pid, key)
		if err != nil {
			return nil, nil, err
		}
		if recordPath {
			path = append(path, pathStep{pid: pid, slot: idx})
		}
		pid = child
	}
	leaf, err := t.pool.FetchPage(t.file, pid)
	if err != nil {
		return nil, nil, err
	}
	return leaf, path, nil
}

// descendStep reads one inner node and returns the child to follow, with the
// inner page's pin scoped to this call.
func (t *Tree) descendStep(pid storage.PageID, key []byte) (child storage.PageID, idx int, err error) {
	pp, err := t.pool.FetchPage(t.file, pid)
	if err != nil {
		return 0, 0, err
	}
	defer pp.Unpin(false)
	idx = childIndex(pp.Page, key)
	return innerCellChild(pp.Page.Cell(storage.SlotID(idx))), idx, nil
}

// LeafStarts returns the PID of every leaf page in leaf-chain order, reading
// only the internal levels of the tree — the level above the leaves holds
// one child pointer per leaf, so collecting leaves costs O(leaves/fanout)
// page reads and touches no data page. Parallel scans use the result to
// split a clustered table into contiguous leaf ranges.
func (t *Tree) LeafStarts() ([]storage.PageID, error) {
	out := make([]storage.PageID, 0, t.leafCount)
	err := t.collectLeaves(t.root, t.height, &out)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// collectLeaves appends the leaf PIDs under pid (at the given level) in key
// order. Children of one inner node are stored in ascending key order and
// siblings chain left to right, so an in-order walk yields leaf-chain order.
func (t *Tree) collectLeaves(pid storage.PageID, level int, out *[]storage.PageID) error {
	if level == 1 {
		*out = append(*out, pid)
		return nil
	}
	children, err := t.innerChildren(pid)
	if err != nil {
		return err
	}
	for _, c := range children {
		if err := t.collectLeaves(c, level-1, out); err != nil {
			return err
		}
	}
	return nil
}

// innerChildren copies one inner node's child pointers, with the page pin
// scoped to this call.
func (t *Tree) innerChildren(pid storage.PageID) ([]storage.PageID, error) {
	pp, err := t.pool.FetchPage(t.file, pid)
	if err != nil {
		return nil, err
	}
	defer pp.Unpin(false)
	children := make([]storage.PageID, 0, pp.Page.NumSlots())
	for s := 0; s < pp.Page.NumSlots(); s++ {
		children = append(children, innerCellChild(pp.Page.Cell(storage.SlotID(s))))
	}
	return children, nil
}

// Search returns a copy of the value stored under key, or found=false.
func (t *Tree) Search(key []byte) (value []byte, found bool, err error) {
	leaf, _, err := t.descend(key, false)
	if err != nil {
		return nil, false, err
	}
	defer leaf.Unpin(false)
	slot, exact := findSlot(leaf.Page, key)
	if !exact {
		return nil, false, nil
	}
	v := leafCellValue(leaf.Page.Cell(storage.SlotID(slot)))
	return append([]byte(nil), v...), true, nil
}

// Get returns a copy of the value at an explicit RID (leaf page + slot),
// used by clustered tables where secondary indexes store row RIDs. The leaf
// page is fetched directly without a root-to-leaf traversal.
func (t *Tree) Get(rid storage.RID) (key, value []byte, err error) {
	pp, err := t.pool.FetchPage(t.file, rid.Page)
	if err != nil {
		return nil, nil, err
	}
	defer pp.Unpin(false)
	if pp.Page.Type() != storage.PageTypeBTreeLeaf {
		return nil, nil, fmt.Errorf("btree: RID %v is not in a leaf page", rid)
	}
	cell := pp.Page.Cell(rid.Slot)
	if cell == nil {
		return nil, nil, fmt.Errorf("btree: RID %v points at deleted slot", rid)
	}
	return append([]byte(nil), cellKey(cell)...),
		append([]byte(nil), leafCellValue(cell)...), nil
}

// View locates the entry at rid and calls fn with its value bytes while the
// leaf is pinned. The value aliases the page buffer and must not be retained
// after fn returns; in exchange, point reads avoid the copies Get makes.
func (t *Tree) View(rid storage.RID, fn func(value []byte) error) error {
	pp, err := t.pool.FetchPage(t.file, rid.Page)
	if err != nil {
		return err
	}
	defer pp.Unpin(false)
	if pp.Page.Type() != storage.PageTypeBTreeLeaf {
		return fmt.Errorf("btree: RID %v is not in a leaf page", rid)
	}
	cell := pp.Page.Cell(rid.Slot)
	if cell == nil {
		return fmt.Errorf("btree: RID %v points at deleted slot", rid)
	}
	return fn(leafCellValue(cell))
}

// Insert stores value under key. It returns ErrDuplicateKey if key exists.
// It returns the RID where the entry landed (meaningful for clustered
// tables; note that later splits can move entries inserted this way, so
// tables that must keep stable RIDs are bulk-loaded instead).
func (t *Tree) Insert(key, value []byte) (storage.RID, error) {
	cell := leafCell(key, value)
	if len(cell) > storage.PageSize/4 {
		return storage.RID{}, fmt.Errorf("btree: entry of %d bytes too large", len(cell))
	}
	leaf, path, err := t.descend(key, true)
	if err != nil {
		return storage.RID{}, err
	}
	slot, exact := findSlot(leaf.Page, key)
	if exact {
		leaf.Unpin(false)
		return storage.RID{}, ErrDuplicateKey
	}
	if s, ok := leaf.Page.InsertCellAt(slot, cell); ok {
		rid := storage.RID{Page: leaf.ID, Slot: s}
		leaf.Unpin(true)
		t.entryCount++
		return rid, t.saveMeta()
	}
	// Leaf full: compact first (reclaims space from deleted entries), retry.
	leaf.Page.Compact()
	if s, ok := leaf.Page.InsertCellAt(slot, cell); ok {
		rid := storage.RID{Page: leaf.ID, Slot: s}
		leaf.Unpin(true)
		t.entryCount++
		return rid, t.saveMeta()
	}
	rid, err := t.splitLeafAndInsert(leaf, path, slot, cell)
	if err != nil {
		return storage.RID{}, err
	}
	t.entryCount++
	return rid, t.saveMeta()
}

// splitLeafAndInsert splits the (pinned, full) leaf, inserts the cell into
// the proper half, and pushes the new separator up the recorded path.
// It consumes the leaf pin.
func (t *Tree) splitLeafAndInsert(leaf *storage.PinnedPage, path []pathStep, slot int, cell []byte) (storage.RID, error) {
	right, err := t.pool.NewPage(t.file, storage.PageTypeBTreeLeaf)
	if err != nil {
		leaf.Unpin(false)
		return storage.RID{}, err
	}
	t.leafCount++
	n := leaf.Page.NumSlots()
	mid := n / 2
	// Move upper half to the right page.
	for i := mid; i < n; i++ {
		c := leaf.Page.Cell(storage.SlotID(i))
		if _, ok := right.Page.InsertCell(c); !ok {
			right.Unpin(true)
			leaf.Unpin(true)
			return storage.RID{}, errors.New("btree: split overflow")
		}
	}
	for i := n - 1; i >= mid; i-- {
		leaf.Page.RemoveCellAt(i)
	}
	leaf.Page.Compact()
	right.Page.SetNext(leaf.Page.Next())
	leaf.Page.SetNext(right.ID)

	var rid storage.RID
	if slot < mid {
		s, ok := leaf.Page.InsertCellAt(slot, cell)
		if !ok {
			right.Unpin(true)
			leaf.Unpin(true)
			return storage.RID{}, errors.New("btree: no room after split (left)")
		}
		rid = storage.RID{Page: leaf.ID, Slot: s}
	} else {
		s, ok := right.Page.InsertCellAt(slot-mid, cell)
		if !ok {
			right.Unpin(true)
			leaf.Unpin(true)
			return storage.RID{}, errors.New("btree: no room after split (right)")
		}
		rid = storage.RID{Page: right.ID, Slot: s}
	}
	sepKey := append([]byte(nil), cellKey(right.Page.Cell(0))...)
	rightID := right.ID
	right.Unpin(true)
	leaf.Unpin(true)
	return rid, t.insertIntoParent(path, sepKey, rightID)
}

// insertIntoParent inserts (sepKey -> child) into the deepest node of path,
// splitting upward as needed. An empty path means the root split.
func (t *Tree) insertIntoParent(path []pathStep, sepKey []byte, child storage.PageID) error {
	if len(path) == 0 {
		return t.growRoot(sepKey, child)
	}
	step := path[len(path)-1]
	parent, err := t.pool.FetchPage(t.file, step.pid)
	if err != nil {
		return err
	}
	cell := innerCell(sepKey, child)
	slot, _ := findSlot(parent.Page, sepKey)
	if _, ok := parent.Page.InsertCellAt(slot, cell); ok {
		parent.Unpin(true)
		return nil
	}
	parent.Page.Compact()
	if _, ok := parent.Page.InsertCellAt(slot, cell); ok {
		parent.Unpin(true)
		return nil
	}
	// Split the inner node. Unlike leaves, the middle separator moves up
	// rather than being copied.
	right, err := t.pool.NewPage(t.file, storage.PageTypeBTreeInner)
	if err != nil {
		parent.Unpin(true)
		return err
	}
	n := parent.Page.NumSlots()
	mid := n / 2
	pushKey := append([]byte(nil), cellKey(parent.Page.Cell(storage.SlotID(mid)))...)
	for i := mid; i < n; i++ {
		c := parent.Page.Cell(storage.SlotID(i))
		if _, ok := right.Page.InsertCell(c); !ok {
			right.Unpin(true)
			parent.Unpin(true)
			return errors.New("btree: inner split overflow")
		}
	}
	for i := n - 1; i >= mid; i-- {
		parent.Page.RemoveCellAt(i)
	}
	parent.Page.Compact()

	// Insert the pending cell into whichever half owns it.
	target := parent.Page
	if bytes.Compare(sepKey, pushKey) >= 0 {
		target = right.Page
	}
	s, _ := findSlot(target, sepKey)
	if _, ok := target.InsertCellAt(s, cell); !ok {
		right.Unpin(true)
		parent.Unpin(true)
		return errors.New("btree: no room after inner split")
	}
	rightID := right.ID
	right.Unpin(true)
	parent.Unpin(true)
	return t.insertIntoParent(path[:len(path)-1], pushKey, rightID)
}

// growRoot installs a new root above the current one.
func (t *Tree) growRoot(sepKey []byte, rightChild storage.PageID) error {
	newRoot, err := t.pool.NewPage(t.file, storage.PageTypeBTreeInner)
	if err != nil {
		return err
	}
	// Left cell: separator is a minimal sentinel (empty key sorts first for
	// int/string tags, since any tag byte > 0x00... an empty key is a valid
	// "less than everything" separator because childIndex falls back to 0).
	if _, ok := newRoot.Page.InsertCell(innerCell(nil, t.root)); !ok {
		newRoot.Unpin(true)
		return errors.New("btree: cannot seed new root")
	}
	if _, ok := newRoot.Page.InsertCell(innerCell(sepKey, rightChild)); !ok {
		newRoot.Unpin(true)
		return errors.New("btree: cannot seed new root")
	}
	t.root = newRoot.ID
	t.height++
	newRoot.Unpin(true)
	return nil
}

// Delete removes key from the tree (lazy: leaves are never merged, matching
// the common behaviour of production engines under read-mostly workloads).
func (t *Tree) Delete(key []byte) error {
	leaf, _, err := t.descend(key, false)
	if err != nil {
		return err
	}
	slot, exact := findSlot(leaf.Page, key)
	if !exact {
		leaf.Unpin(false)
		return ErrKeyNotFound
	}
	leaf.Page.RemoveCellAt(slot)
	leaf.Unpin(true)
	t.entryCount--
	return t.saveMeta()
}
