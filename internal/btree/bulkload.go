package btree

import (
	"bytes"
	"errors"
	"fmt"

	"pagefeedback/internal/storage"
)

// Entry is one key/value pair for bulk loading.
type Entry struct {
	Key   []byte
	Value []byte
}

// BulkLoadResult reports where each entry landed, in input order. Clustered
// tables use it to build secondary indexes pointing at stable RIDs.
type BulkLoadResult struct {
	RIDs []storage.RID
}

// BulkLoad builds a tree bottom-up from entries sorted ascending by key
// (strictly: duplicate keys are rejected). fillFactor in (0,1] controls how
// full leaf and inner pages are packed; 1.0 produces the densest tree, the
// layout a freshly loaded production table would have. The tree must be
// freshly created and empty.
//
// Leaves are allocated in key order immediately after the meta page, so a
// full scan of a bulk-loaded tree is sequential I/O.
func (t *Tree) BulkLoad(entries []Entry, fillFactor float64) (*BulkLoadResult, error) {
	if t.entryCount != 0 || t.height != 1 {
		return nil, errors.New("btree: BulkLoad on non-empty tree")
	}
	if fillFactor <= 0 || fillFactor > 1 {
		return nil, fmt.Errorf("btree: fill factor %v out of (0,1]", fillFactor)
	}
	for i := 1; i < len(entries); i++ {
		if bytes.Compare(entries[i-1].Key, entries[i].Key) >= 0 {
			return nil, fmt.Errorf("btree: entries not strictly sorted at %d", i)
		}
	}
	res := &BulkLoadResult{RIDs: make([]storage.RID, 0, len(entries))}

	type nodeRef struct {
		minKey []byte
		pid    storage.PageID
	}

	// budget is the per-page byte budget implied by the fill factor: the
	// usable space of an empty page scaled down.
	emptyFree := storage.InitPage(make([]byte, storage.PageSize), storage.PageTypeBTreeLeaf).FreeSpace()
	budget := int(float64(emptyFree) * fillFactor)

	// Pack leaves. The initial root leaf created by Create is reused as the
	// first leaf.
	var level []nodeRef
	cur, err := t.pool.FetchPage(t.file, t.root)
	if err != nil {
		return nil, err
	}
	curUsed := 0
	var curMin []byte
	flush := func() {
		level = append(level, nodeRef{minKey: curMin, pid: cur.ID})
		cur.Unpin(true)
		cur = nil
	}
	for _, e := range entries {
		cell := leafCell(e.Key, e.Value)
		if len(cell) > storage.PageSize/4 {
			cur.Unpin(true)
			return nil, fmt.Errorf("btree: entry of %d bytes too large", len(cell))
		}
		cost := len(cell) + 4 // cell + slot entry
		if curUsed+cost > budget && cur.Page.NumSlots() > 0 {
			prev := cur
			next, err := t.pool.NewPage(t.file, storage.PageTypeBTreeLeaf)
			if err != nil {
				prev.Unpin(true)
				return nil, err
			}
			prev.Page.SetNext(next.ID)
			level = append(level, nodeRef{minKey: curMin, pid: prev.ID})
			prev.Unpin(true)
			cur = next
			curUsed = 0
			curMin = nil
			t.leafCount++
		}
		slot, ok := cur.Page.InsertCell(cell)
		if !ok {
			// The fill budget admitted a cell the page cannot hold (can
			// only happen at fillFactor 1.0 boundaries); open a new page.
			prev := cur
			next, err := t.pool.NewPage(t.file, storage.PageTypeBTreeLeaf)
			if err != nil {
				prev.Unpin(true)
				return nil, err
			}
			prev.Page.SetNext(next.ID)
			level = append(level, nodeRef{minKey: curMin, pid: prev.ID})
			prev.Unpin(true)
			cur = next
			curUsed = 0
			curMin = nil
			t.leafCount++
			if slot, ok = cur.Page.InsertCell(cell); !ok {
				cur.Unpin(true)
				return nil, errors.New("btree: cell does not fit in empty page")
			}
		}
		if curMin == nil {
			curMin = append([]byte(nil), e.Key...)
		}
		curUsed += cost
		res.RIDs = append(res.RIDs, storage.RID{Page: cur.ID, Slot: slot})
	}
	flush()
	t.entryCount = int64(len(entries))

	// Build inner levels until one node remains.
	for len(level) > 1 {
		var parents []nodeRef
		node, err := t.pool.NewPage(t.file, storage.PageTypeBTreeInner)
		if err != nil {
			return nil, err
		}
		nodeUsed := 0
		var nodeMin []byte
		for _, child := range level {
			// childIndex falls back to child 0 for keys below every
			// separator, so the real minimum key is a correct separator
			// even for the first cell of a node.
			cell := innerCell(child.minKey, child.pid)
			cost := len(cell) + 4
			if nodeUsed+cost > budget && node.Page.NumSlots() > 0 {
				parents = append(parents, nodeRef{minKey: nodeMin, pid: node.ID})
				node.Unpin(true)
				node, err = t.pool.NewPage(t.file, storage.PageTypeBTreeInner)
				if err != nil {
					return nil, err
				}
				nodeUsed = 0
				nodeMin = nil
			}
			if _, ok := node.Page.InsertCell(cell); !ok {
				node.Unpin(true)
				return nil, errors.New("btree: inner cell does not fit")
			}
			if nodeMin == nil {
				nodeMin = child.minKey
			}
			nodeUsed += cost
		}
		parents = append(parents, nodeRef{minKey: nodeMin, pid: node.ID})
		node.Unpin(true)
		level = parents
		t.height++
	}
	t.root = level[0].pid
	return res, t.saveMeta()
}
