package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

func newTestTree(t *testing.T, poolPages int) *Tree {
	t.Helper()
	d := storage.NewDiskManager(storage.IOModel{RandomRead: 4 * time.Millisecond, SeqRead: 100 * time.Microsecond})
	bp := storage.NewBufferPool(d, poolPages)
	tr, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func intKey(v int64) []byte { return tuple.EncodeKey(tuple.Int64(v)) }

func TestInsertSearchSmall(t *testing.T) {
	tr := newTestTree(t, 64)
	for i := int64(0); i < 100; i++ {
		if _, err := tr.Insert(intKey(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 100; i++ {
		v, found, err := tr.Search(intKey(i))
		if err != nil {
			t.Fatal(err)
		}
		if !found || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Search(%d) = %q,%v", i, v, found)
		}
	}
	if _, found, _ := tr.Search(intKey(1000)); found {
		t.Error("found missing key")
	}
	if tr.Entries() != 100 {
		t.Errorf("Entries = %d", tr.Entries())
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr := newTestTree(t, 64)
	if _, err := tr.Insert(intKey(1), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert(intKey(1), []byte("b")); err != ErrDuplicateKey {
		t.Errorf("duplicate insert err = %v, want ErrDuplicateKey", err)
	}
}

func TestInsertManyRandomOrderSplits(t *testing.T) {
	tr := newTestTree(t, 256)
	const n = 5000
	perm := rand.New(rand.NewSource(42)).Perm(n)
	payload := make([]byte, 40)
	for _, v := range perm {
		if _, err := tr.Insert(intKey(int64(v)), payload); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d, expected splits", tr.Height())
	}
	// Every key findable.
	for i := 0; i < n; i += 97 {
		if _, found, err := tr.Search(intKey(int64(i))); err != nil || !found {
			t.Fatalf("Search(%d) found=%v err=%v", i, found, err)
		}
	}
	// Full scan is sorted and complete.
	c, err := tr.SeekFirst()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var prev []byte
	count := 0
	for c.Next() {
		if prev != nil && bytes.Compare(prev, c.Key()) >= 0 {
			t.Fatalf("scan out of order at entry %d", count)
		}
		prev = append(prev[:0], c.Key()...)
		count++
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if count != n {
		t.Errorf("scan found %d entries, want %d", count, n)
	}
}

func TestSeekGE(t *testing.T) {
	tr := newTestTree(t, 128)
	for i := int64(0); i < 1000; i += 10 {
		if _, err := tr.Insert(intKey(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		seek int64
		want int64
	}{
		{0, 0}, {1, 10}, {10, 10}, {995, -1}, {990, 990}, {-50, 0},
	}
	for _, cse := range cases {
		c, err := tr.SeekGE(intKey(cse.seek))
		if err != nil {
			t.Fatal(err)
		}
		if !c.Next() {
			if cse.want != -1 {
				t.Errorf("SeekGE(%d): exhausted, want %d", cse.seek, cse.want)
			}
			c.Close()
			continue
		}
		vals, err := tuple.DecodeKey(c.Key())
		if err != nil {
			t.Fatal(err)
		}
		if vals[0].Int != cse.want {
			t.Errorf("SeekGE(%d) = %d, want %d", cse.seek, vals[0].Int, cse.want)
		}
		c.Close()
	}
}

func TestDelete(t *testing.T) {
	tr := newTestTree(t, 64)
	for i := int64(0); i < 50; i++ {
		tr.Insert(intKey(i), []byte("x"))
	}
	if err := tr.Delete(intKey(25)); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := tr.Search(intKey(25)); found {
		t.Error("deleted key still found")
	}
	if err := tr.Delete(intKey(25)); err != ErrKeyNotFound {
		t.Errorf("second delete err = %v", err)
	}
	if tr.Entries() != 49 {
		t.Errorf("Entries = %d", tr.Entries())
	}
}

func TestGetByRID(t *testing.T) {
	tr := newTestTree(t, 64)
	rid, err := tr.Insert(intKey(7), []byte("row-7"))
	if err != nil {
		t.Fatal(err)
	}
	k, v, err := tr.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k, intKey(7)) || string(v) != "row-7" {
		t.Errorf("Get = %x,%q", k, v)
	}
	if _, _, err := tr.Get(storage.RID{Page: 0, Slot: 0}); err == nil {
		t.Error("Get on meta page succeeded")
	}
}

func TestBulkLoadAndScan(t *testing.T) {
	tr := newTestTree(t, 256)
	const n = 3000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: intKey(int64(i)), Value: []byte(fmt.Sprintf("row%05d", i))}
	}
	res, err := tr.BulkLoad(entries, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RIDs) != n {
		t.Fatalf("got %d RIDs", len(res.RIDs))
	}
	if tr.Entries() != n {
		t.Errorf("Entries = %d", tr.Entries())
	}
	// RIDs must address the right rows directly.
	for i := 0; i < n; i += 131 {
		k, v, err := tr.Get(res.RIDs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(k, entries[i].Key) || !bytes.Equal(v, entries[i].Value) {
			t.Errorf("RID %d resolves to wrong entry", i)
		}
	}
	// Search works through the built inner levels.
	for i := 0; i < n; i += 37 {
		v, found, err := tr.Search(intKey(int64(i)))
		if err != nil || !found || !bytes.Equal(v, entries[i].Value) {
			t.Fatalf("Search(%d) after bulk load: found=%v err=%v", i, found, err)
		}
	}
	// Full scan returns everything in order.
	c, _ := tr.SeekFirst()
	defer c.Close()
	i := 0
	for c.Next() {
		if !bytes.Equal(c.Key(), entries[i].Key) {
			t.Fatalf("scan entry %d mismatch", i)
		}
		i++
	}
	if i != n {
		t.Errorf("scan found %d", i)
	}
}

func TestBulkLoadSequentialLeafLayout(t *testing.T) {
	// Leaves of a bulk-loaded tree must occupy consecutive PIDs so a full
	// scan is sequential I/O — this is what makes Table Scan cheap and the
	// clustering effects of the paper observable.
	tr := newTestTree(t, 256)
	entries := make([]Entry, 2000)
	for i := range entries {
		entries[i] = Entry{Key: intKey(int64(i)), Value: make([]byte, 64)}
	}
	if _, err := tr.BulkLoad(entries, 1.0); err != nil {
		t.Fatal(err)
	}
	c, _ := tr.SeekFirst()
	defer c.Close()
	var pids []storage.PageID
	for c.Next() {
		rid := c.RID()
		if len(pids) == 0 || pids[len(pids)-1] != rid.Page {
			pids = append(pids, rid.Page)
		}
	}
	if int64(len(pids)) != tr.LeafPages() {
		t.Errorf("scan touched %d pages, LeafPages = %d", len(pids), tr.LeafPages())
	}
	for i := 1; i < len(pids); i++ {
		if pids[i] != pids[i-1]+1 {
			t.Fatalf("leaf pages not consecutive: %d then %d", pids[i-1], pids[i])
		}
	}
}

func TestBulkLoadFillFactor(t *testing.T) {
	mk := func(ff float64) int64 {
		tr := newTestTree(t, 512)
		entries := make([]Entry, 2000)
		for i := range entries {
			entries[i] = Entry{Key: intKey(int64(i)), Value: make([]byte, 64)}
		}
		if _, err := tr.BulkLoad(entries, ff); err != nil {
			t.Fatal(err)
		}
		return tr.LeafPages()
	}
	full, half := mk(1.0), mk(0.5)
	if half < full*3/2 {
		t.Errorf("fill factor 0.5 used %d leaves vs %d at 1.0; expected ~2x", half, full)
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	tr := newTestTree(t, 64)
	entries := []Entry{{Key: intKey(2)}, {Key: intKey(1)}}
	if _, err := tr.BulkLoad(entries, 1.0); err == nil {
		t.Error("unsorted bulk load succeeded")
	}
	tr2 := newTestTree(t, 64)
	dup := []Entry{{Key: intKey(1)}, {Key: intKey(1)}}
	if _, err := tr2.BulkLoad(dup, 1.0); err == nil {
		t.Error("duplicate bulk load succeeded")
	}
}

func TestBulkLoadOnNonEmptyFails(t *testing.T) {
	tr := newTestTree(t, 64)
	tr.Insert(intKey(1), nil)
	if _, err := tr.BulkLoad([]Entry{{Key: intKey(2)}}, 1.0); err == nil {
		t.Error("BulkLoad on non-empty tree succeeded")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := newTestTree(t, 64)
	if _, err := tr.BulkLoad(nil, 1.0); err != nil {
		t.Fatal(err)
	}
	c, _ := tr.SeekFirst()
	defer c.Close()
	if c.Next() {
		t.Error("empty tree scan returned an entry")
	}
}

func TestInsertAfterBulkLoad(t *testing.T) {
	tr := newTestTree(t, 256)
	entries := make([]Entry, 500)
	for i := range entries {
		entries[i] = Entry{Key: intKey(int64(i * 2)), Value: []byte("bulk")}
	}
	if _, err := tr.BulkLoad(entries, 1.0); err != nil {
		t.Fatal(err)
	}
	// Insert odd keys, including below the minimum.
	for _, k := range []int64{-5, 1, 999, 501} {
		if _, err := tr.Insert(intKey(k), []byte("ins")); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	for _, k := range []int64{-5, 1, 999, 501, 0, 998} {
		if _, found, err := tr.Search(intKey(k)); err != nil || !found {
			t.Errorf("Search(%d) after mixed load: found=%v err=%v", k, found, err)
		}
	}
}

func TestOpenPersistedTree(t *testing.T) {
	d := storage.NewDiskManager(storage.IOModel{RandomRead: time.Millisecond, SeqRead: time.Microsecond})
	bp := storage.NewBufferPool(d, 64)
	tr, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		tr.Insert(intKey(i), []byte("p"))
	}
	if err := bp.Reset(); err != nil { // flush + cold cache
		t.Fatal(err)
	}
	tr2, err := Open(bp, tr.File())
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Entries() != 200 || tr2.Height() != tr.Height() {
		t.Errorf("reopened: entries=%d height=%d", tr2.Entries(), tr2.Height())
	}
	if _, found, _ := tr2.Search(intKey(150)); !found {
		t.Error("key lost across reopen")
	}
}

func TestTreeQuickInsertScanMatchesSortedInput(t *testing.T) {
	f := func(keys []int32) bool {
		tr := newTestTree(t, 256)
		seen := map[int32]bool{}
		var uniq []int32
		for _, k := range keys {
			if !seen[k] {
				seen[k] = true
				uniq = append(uniq, k)
				if _, err := tr.Insert(intKey(int64(k)), nil); err != nil {
					return false
				}
			}
		}
		sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
		c, err := tr.SeekFirst()
		if err != nil {
			return false
		}
		defer c.Close()
		i := 0
		for c.Next() {
			vals, err := tuple.DecodeKey(c.Key())
			if err != nil || i >= len(uniq) || vals[0].Int != int64(uniq[i]) {
				return false
			}
			i++
		}
		return i == len(uniq) && c.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStringKeys(t *testing.T) {
	tr := newTestTree(t, 64)
	words := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for _, w := range words {
		if _, err := tr.Insert(tuple.EncodeKey(tuple.Str(w)), []byte(w)); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := tr.SeekFirst()
	defer c.Close()
	var got []string
	for c.Next() {
		got = append(got, string(c.Value()))
	}
	want := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
