package btree

import (
	"encoding/binary"
	"fmt"

	"pagefeedback/internal/storage"
)

// Cursor iterates leaf entries in key order. Obtain one from SeekGE or
// SeekFirst; call Next until it returns false; always Close. Key and Value
// alias the pinned leaf page and are valid only until the next Next or Close.
type Cursor struct {
	tree *Tree
	leaf *storage.PinnedPage
	slot int
	err  error
	// valid reports whether the cursor currently points at an entry.
	valid bool
	// bounded cursors (CursorAtLeaf) stop after consuming a fixed number of
	// leaves instead of following the chain to the end of the tree.
	bounded    bool
	leavesLeft int // further leaves the cursor may still enter
}

// SeekFirst positions a cursor at the smallest entry.
func (t *Tree) SeekFirst() (*Cursor, error) {
	return t.SeekGE(nil) // nil key sorts before every real key
}

// SeekGE positions a cursor at the first entry with key >= the given key.
func (t *Tree) SeekGE(key []byte) (*Cursor, error) {
	leaf, _, err := t.descend(key, false)
	if err != nil {
		return nil, err
	}
	c := &Cursor{tree: t, leaf: leaf}
	slot, _ := findSlot(leaf.Page, key)
	c.slot = slot - 1 // Next() advances to `slot`
	return c, nil
}

// CursorAtLeaf positions a cursor before the first entry of leaf pid and
// limits it to nleaves consecutive leaves (counting pid itself). Together
// with LeafStarts it splits a tree into contiguous leaf ranges: partition i
// gets CursorAtLeaf(starts[off], len(chunk)) and stops exactly where
// partition i+1 begins, so every leaf is visited by exactly one cursor.
func (t *Tree) CursorAtLeaf(pid storage.PageID, nleaves int) (*Cursor, error) {
	if nleaves <= 0 {
		return nil, fmt.Errorf("btree: CursorAtLeaf with %d leaves", nleaves)
	}
	pp, err := t.pool.FetchPage(t.file, pid)
	if err != nil {
		return nil, err
	}
	return &Cursor{tree: t, leaf: pp, slot: -1, bounded: true, leavesLeft: nleaves - 1}, nil
}

// enterLeaf moves the cursor into the leaf at next, honoring the leaf budget
// of bounded cursors. The previous leaf must already be unpinned. Returns
// false at the end of the range or tree, or on a read error (recorded).
func (c *Cursor) enterLeaf(next storage.PageID) bool {
	if next == storage.InvalidPageID {
		return false
	}
	if c.bounded {
		if c.leavesLeft == 0 {
			return false
		}
		c.leavesLeft--
	}
	pp, err := c.tree.pool.FetchPage(c.tree.file, next)
	if err != nil {
		c.err = err
		return false
	}
	c.leaf = pp
	return true
}

// Next advances to the next entry, returning false at the end of the tree or
// on error (check Err).
func (c *Cursor) Next() bool {
	if c.err != nil || c.leaf == nil {
		c.valid = false
		return false
	}
	c.slot++
	for c.slot >= c.leaf.Page.NumSlots() {
		next := c.leaf.Page.Next()
		c.leaf.Unpin(false)
		c.leaf = nil
		if !c.enterLeaf(next) {
			c.valid = false
			return false
		}
		c.slot = 0
	}
	c.valid = true
	return true
}

// Valid reports whether the cursor points at an entry.
func (c *Cursor) Valid() bool { return c.valid }

// NextLeaf consumes the rest of the current leaf in one call, for
// page-batched execution: fn is invoked for every remaining entry of the
// leaf, with key and value aliasing the pinned page (do not retain them).
// If fn returns false, iteration stops with the cursor on that entry and
// NextLeaf returns false. Crossing into the next leaf happens lazily on the
// following call, so the just-consumed leaf remains the cursor's current
// page until then. Returns false at the end of the tree or on error (check
// Err).
func (c *Cursor) NextLeaf(fn func(key, value []byte, rid storage.RID) bool) bool {
	if c.err != nil || c.leaf == nil {
		c.valid = false
		return false
	}
	// Current leaf exhausted on a previous call: cross to the next one.
	for c.slot+1 >= c.leaf.Page.NumSlots() {
		next := c.leaf.Page.Next()
		c.leaf.Unpin(false)
		c.leaf = nil
		if !c.enterLeaf(next) {
			c.valid = false
			return false
		}
		c.slot = -1
	}
	// The slot count and page identity are loop invariants (the leaf stays
	// pinned for the whole sweep), so they are read once, and each cell's
	// key length is decoded once to split key from value.
	n := c.leaf.Page.NumSlots()
	rid := storage.RID{Page: c.leaf.ID}
	for c.slot+1 < n {
		c.slot++
		c.valid = true
		rid.Slot = storage.SlotID(c.slot)
		cell := c.leaf.Page.Cell(rid.Slot)
		kl := binary.LittleEndian.Uint16(cell)
		if !fn(cell[2:2+kl], cell[2+kl:], rid) {
			return false
		}
	}
	return true
}

// Key returns the current entry's key (aliases the page buffer).
func (c *Cursor) Key() []byte {
	return cellKey(c.leaf.Page.Cell(storage.SlotID(c.slot)))
}

// Value returns the current entry's value (aliases the page buffer).
func (c *Cursor) Value() []byte {
	return leafCellValue(c.leaf.Page.Cell(storage.SlotID(c.slot)))
}

// RID returns the (leaf page, slot) address of the current entry.
func (c *Cursor) RID() storage.RID {
	return storage.RID{Page: c.leaf.ID, Slot: storage.SlotID(c.slot)}
}

// Err returns the first error encountered while iterating.
func (c *Cursor) Err() error { return c.err }

// Close releases the cursor's page pin. It is safe to call multiple times.
func (c *Cursor) Close() {
	if c.leaf != nil {
		c.leaf.Unpin(false)
		c.leaf = nil
	}
	c.valid = false
}
