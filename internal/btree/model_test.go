package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

// TestTreeModelRandomOps drives the tree with long random sequences of
// insert/delete/search/scan against a map model, across several seeds and
// key distributions. This is the broad-coverage complement to the targeted
// split/bulk-load tests.
func TestTreeModelRandomOps(t *testing.T) {
	for _, cfg := range []struct {
		name   string
		seed   int64
		keyMax int64 // small max -> dense domain with many collisions
		ops    int
	}{
		{"dense", 1, 200, 4000},
		{"sparse", 2, 1 << 40, 4000},
		{"medium", 3, 5000, 6000},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			runTreeModel(t, cfg.seed, cfg.keyMax, cfg.ops)
		})
	}
}

func runTreeModel(t *testing.T, seed, keyMax int64, ops int) {
	t.Helper()
	d := storage.NewDiskManager(storage.IOModel{RandomRead: time.Millisecond, SeqRead: time.Microsecond})
	bp := storage.NewBufferPool(d, 512)
	tr, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	model := map[int64]string{}

	for op := 0; op < ops; op++ {
		k := rng.Int63n(keyMax)
		key := tuple.EncodeKey(tuple.Int64(k))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // insert
			val := fmt.Sprintf("v%d-%d", k, op)
			_, err := tr.Insert(key, []byte(val))
			if _, exists := model[k]; exists {
				if err != ErrDuplicateKey {
					t.Fatalf("op %d: duplicate insert err = %v", op, err)
				}
			} else {
				if err != nil {
					t.Fatalf("op %d: insert: %v", op, err)
				}
				model[k] = val
			}
		case 5, 6: // delete
			err := tr.Delete(key)
			if _, exists := model[k]; exists {
				if err != nil {
					t.Fatalf("op %d: delete: %v", op, err)
				}
				delete(model, k)
			} else if err != ErrKeyNotFound {
				t.Fatalf("op %d: phantom delete err = %v", op, err)
			}
		case 7, 8: // point search
			v, found, err := tr.Search(key)
			if err != nil {
				t.Fatalf("op %d: search: %v", op, err)
			}
			want, exists := model[k]
			if found != exists || (found && string(v) != want) {
				t.Fatalf("op %d: search(%d) = %q,%v; model %q,%v", op, k, v, found, want, exists)
			}
		case 9: // occasional full-scan audit
			if op%500 != 0 {
				continue
			}
			auditScan(t, tr, model)
		}
	}
	auditScan(t, tr, model)
	if tr.Entries() != int64(len(model)) {
		t.Fatalf("Entries = %d, model has %d", tr.Entries(), len(model))
	}
}

// auditScan verifies a full scan returns exactly the model's keys in order.
func auditScan(t *testing.T, tr *Tree, model map[int64]string) {
	t.Helper()
	keys := make([]int64, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	c, err := tr.SeekFirst()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	i := 0
	for c.Next() {
		if i >= len(keys) {
			t.Fatalf("scan produced extra entries beyond %d", len(keys))
		}
		wantKey := tuple.EncodeKey(tuple.Int64(keys[i]))
		if !bytes.Equal(c.Key(), wantKey) {
			vals, _ := tuple.DecodeKey(c.Key())
			t.Fatalf("scan entry %d = %v, want key %d", i, vals, keys[i])
		}
		if string(c.Value()) != model[keys[i]] {
			t.Fatalf("scan entry %d value mismatch", i)
		}
		i++
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(keys) {
		t.Fatalf("scan produced %d entries, model has %d", i, len(keys))
	}
}

// TestTreeDeepInnerSplits uses wide keys (small fanout) so random inserts
// split inner nodes several levels deep — the recursive insertIntoParent
// and growRoot paths that narrow keys rarely reach.
func TestTreeDeepInnerSplits(t *testing.T) {
	d := storage.NewDiskManager(storage.IOModel{RandomRead: time.Millisecond, SeqRead: time.Microsecond})
	bp := storage.NewBufferPool(d, 2048)
	tr, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	pad := make([]byte, 300) // wide keys: ~25 entries/page
	perm := rand.New(rand.NewSource(77)).Perm(n)
	mkKey := func(k int) []byte {
		return tuple.EncodeKey(tuple.Str(fmt.Sprintf("%06d-%s", k, pad)))
	}
	for _, k := range perm {
		if _, err := tr.Insert(mkKey(k), []byte{byte(k)}); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d, wanted >= 3 (inner splits not exercised)", tr.Height())
	}
	// Every key present, in order, with the right value.
	c, err := tr.SeekFirst()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	i := 0
	for c.Next() {
		if !bytes.Equal(c.Key(), mkKey(i)) {
			t.Fatalf("entry %d out of order", i)
		}
		if c.Value()[0] != byte(i) {
			t.Fatalf("entry %d value wrong", i)
		}
		i++
	}
	if i != n {
		t.Fatalf("scan found %d of %d", i, n)
	}
	// Random point lookups through 3+ levels.
	for k := 0; k < n; k += 173 {
		if _, found, err := tr.Search(mkKey(k)); err != nil || !found {
			t.Fatalf("Search(%d): found=%v err=%v", k, found, err)
		}
	}
}

// TestTreeOversizedEntryRejected covers the entry-size guard.
func TestTreeOversizedEntryRejected(t *testing.T) {
	tr := newTestTree(t, 64)
	big := make([]byte, storage.PageSize/2)
	if _, err := tr.Insert(tuple.EncodeKey(tuple.Int64(1)), big); err == nil {
		t.Error("oversized insert succeeded")
	}
}

// TestTreeModelAfterBulkLoad mixes bulk loading with subsequent random
// mutations — the lifecycle of a production table.
func TestTreeModelAfterBulkLoad(t *testing.T) {
	d := storage.NewDiskManager(storage.IOModel{RandomRead: time.Millisecond, SeqRead: time.Microsecond})
	bp := storage.NewBufferPool(d, 512)
	tr, err := Create(bp)
	if err != nil {
		t.Fatal(err)
	}
	model := map[int64]string{}
	var entries []Entry
	for k := int64(0); k < 3000; k += 3 {
		v := fmt.Sprintf("bulk%d", k)
		entries = append(entries, Entry{Key: tuple.EncodeKey(tuple.Int64(k)), Value: []byte(v)})
		model[k] = v
	}
	if _, err := tr.BulkLoad(entries, 0.9); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for op := 0; op < 3000; op++ {
		k := rng.Int63n(3500)
		key := tuple.EncodeKey(tuple.Int64(k))
		if rng.Intn(2) == 0 {
			v := fmt.Sprintf("ins%d-%d", k, op)
			_, err := tr.Insert(key, []byte(v))
			if _, exists := model[k]; exists {
				if err != ErrDuplicateKey {
					t.Fatalf("dup insert err = %v", err)
				}
			} else if err != nil {
				t.Fatal(err)
			} else {
				model[k] = v
			}
		} else {
			err := tr.Delete(key)
			if _, exists := model[k]; exists {
				if err != nil {
					t.Fatal(err)
				}
				delete(model, k)
			} else if err != ErrKeyNotFound {
				t.Fatalf("phantom delete err = %v", err)
			}
		}
	}
	auditScan(t, tr, model)
}
