package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"pagefeedback"
	"pagefeedback/internal/exec"
	"pagefeedback/internal/storage"
)

// chaosEnv builds the standard workload once per test.
func chaosEnv(t *testing.T, cfg pagefeedback.Config, n int) *Env {
	t.Helper()
	env, err := BuildEnv(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// waitGoroutines polls until the goroutine count returns to (near) base.
// Parallel scans and prefetchers wind down asynchronously after a query
// aborts, so a small settle window is part of the contract, a growing count
// is not.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine leak: %d running, baseline %d", n, base)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosSweep is the exhaustive fault-schedule sweep: every generated
// schedule runs serially and in parallel, and every outcome must satisfy the
// global invariants (typed error or correct result, zero pin leaks,
// untouched feedback cache on failure, baseline-identical feedback on
// success).
func TestChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is long")
	}
	base := runtime.NumGoroutine()
	env := chaosEnv(t, pagefeedback.DefaultConfig(), 3000)
	reads := make([]int64, len(env.Queries))
	for q := range env.Queries {
		reads[q] = env.CountReads(q)
		if reads[q] == 0 {
			t.Fatalf("query %d issued no reads", q)
		}
	}
	schedules := GenerateSchedules(reads)
	if len(schedules) < 200 {
		t.Fatalf("sweep has only %d schedules, want >= 200", len(schedules))
	}
	t.Logf("sweeping %d schedules x {serial, parallel} (reads per query: %v)", len(schedules), reads)

	failed := 0
	for _, s := range schedules {
		for _, par := range []int{0, 4} {
			s.Parallelism = par
			out := env.Run(s)
			if err := env.Check(s, out); err != nil {
				t.Error(err)
				if failed++; failed > 20 {
					t.Fatal("too many invariant violations; stopping sweep")
				}
			}
		}
	}
	waitGoroutines(t, base)
}

// TestChaosWriteFaults exercises the write-fault surface: dirty pages whose
// flush fails at the k-th write must surface an error (not a panic), leave
// no pins behind, and the pool must fully recover once the fault clears.
func TestChaosWriteFaults(t *testing.T) {
	env := chaosEnv(t, pagefeedback.DefaultConfig(), 1000)
	pool := env.Eng.Pool()
	disk := pool.Disk()
	scratch := disk.CreateFile()

	for _, failAfter := range []int64{0, 1, 2} {
		// Dirty four scratch pages, then make the flush fail partway.
		for i := 0; i < 4; i++ {
			pp, err := pool.NewPage(scratch, 0x7f)
			if err != nil {
				t.Fatalf("NewPage: %v", err)
			}
			pp.Unpin(true)
		}
		disk.FailWritesAfter(failAfter)
		err := pool.Flush()
		disk.FailWritesAfter(-1)
		if err == nil {
			t.Fatalf("failAfter=%d: flush succeeded with write faults armed", failAfter)
		}
		if !errors.Is(err, storage.ErrInjectedWriteFault) {
			t.Fatalf("failAfter=%d: flush error %v, want ErrInjectedWriteFault", failAfter, err)
		}
		if n := pool.Pinned(); n != 0 {
			t.Fatalf("failAfter=%d: %d pins leaked by failed flush", failAfter, n)
		}
		// The fault is gone; the remaining dirty pages must flush cleanly.
		if err := pool.Flush(); err != nil {
			t.Fatalf("failAfter=%d: recovery flush: %v", failAfter, err)
		}
		// And the engine must still answer queries correctly.
		out := env.Run(Schedule{Name: "post-write-fault"})
		if err := env.Check(Schedule{Name: "post-write-fault"}, out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChaosPoolExhaustion pins most of a minimum-size pool and runs queries
// against the remainder, under both the fail-fast policy (wait budget 0) and
// the bounded-wait policy. Every outcome must be a typed error or a correct
// result, and the pool must recover completely once the pins drop.
func TestChaosPoolExhaustion(t *testing.T) {
	cfg := pagefeedback.DefaultConfig()
	cfg.PoolPages = 64
	cfg.PoolWaitBudget = 0
	env := chaosEnv(t, cfg, 600)
	pool := env.Eng.Pool()
	scratch := pool.Disk().CreateFile()

	for _, budget := range []time.Duration{0, 3 * time.Millisecond} {
		pool.SetWaitBudget(budget)
		for _, pinCount := range []int{48, 56, 62} {
			pins := make([]*storage.PinnedPage, 0, pinCount)
			for i := 0; i < pinCount; i++ {
				pp, err := pool.NewPage(scratch, 0x7f)
				if err != nil {
					break // pool too full to pin more; proceed with what we have
				}
				pins = append(pins, pp)
			}
			s := Schedule{Name: "pool-exhaustion", WarmCache: true}
			out := env.Run(s)
			if out.Err != nil {
				var qe *pagefeedback.QueryError
				if !errors.As(out.Err, &qe) {
					t.Fatalf("budget=%v pins=%d: untyped error %v", budget, pinCount, out.Err)
				}
			}
			for _, pp := range pins {
				pp.Unpin(false)
			}
			if n := pool.Pinned(); n != 0 {
				t.Fatalf("budget=%v pins=%d: %d pins leaked", budget, pinCount, n)
			}
			// Pool pressure gone: the same query must now succeed.
			out = env.Run(s)
			if err := env.Check(s, out); err != nil {
				t.Fatalf("budget=%v pins=%d: after release: %v", budget, pinCount, err)
			}
		}
	}
	pool.SetWaitBudget(0)
}

// TestChaosPoolWaitRideThrough verifies graceful degradation: a query that
// hits an exhausted pool inside its wait budget rides the stall out and
// succeeds once frames free up, instead of failing fast.
func TestChaosPoolWaitRideThrough(t *testing.T) {
	cfg := pagefeedback.DefaultConfig()
	cfg.PoolPages = 64
	cfg.PoolWaitBudget = 2 * time.Second
	env := chaosEnv(t, cfg, 600)
	pool := env.Eng.Pool()
	scratch := pool.Disk().CreateFile()

	pins := make([]*storage.PinnedPage, 0, 62)
	for i := 0; i < 62; i++ {
		pp, err := pool.NewPage(scratch, 0x7f)
		if err != nil {
			break
		}
		pins = append(pins, pp)
	}
	done := make(chan Outcome, 1)
	go func() {
		done <- env.Run(Schedule{Name: "ride-through", WarmCache: true})
	}()
	time.Sleep(20 * time.Millisecond)
	for _, pp := range pins {
		pp.Unpin(false)
	}
	out := <-done
	if out.Err != nil {
		// The query may have threaded the needle through free shards before
		// the release, or waited; either way a typed error is the only
		// acceptable failure (e.g. if it burned its budget pre-release).
		var qe *pagefeedback.QueryError
		if !errors.As(out.Err, &qe) {
			t.Fatalf("untyped error: %v", out.Err)
		}
	} else if err := env.Check(Schedule{Name: "ride-through", WarmCache: true}, out); err != nil {
		t.Fatal(err)
	}
	if n := pool.Pinned(); n != 0 {
		t.Fatalf("%d pins leaked", n)
	}
}

// TestChaosAdmissionOverload floods a gated engine and verifies the overload
// surface: every query either succeeds with correct rows, is rejected with
// ErrKindOverload (queue full or queue-deadline expiry), or times out — and
// the gate's books balance.
func TestChaosAdmissionOverload(t *testing.T) {
	cfg := pagefeedback.DefaultConfig()
	cfg.MaxConcurrent = 2
	cfg.MaxQueueDepth = 4
	env := chaosEnv(t, cfg, 1000)

	const queries = 16
	var wg sync.WaitGroup
	outs := make([]Outcome, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := Schedule{Name: "overload", Query: i % len(env.Queries), WarmCache: true}
			if i%3 == 0 {
				s.Timeout = 5 * time.Millisecond
			}
			outs[i] = env.Run(s)
		}(i)
	}
	wg.Wait()

	succeeded := 0
	for i, out := range outs {
		s := Schedule{Name: "overload", Query: i % len(env.Queries), WarmCache: true}
		if out.Err != nil {
			var qe *pagefeedback.QueryError
			if !errors.As(out.Err, &qe) {
				t.Fatalf("query %d: untyped error %v", i, out.Err)
			}
			switch qe.Kind {
			case pagefeedback.ErrKindOverload, pagefeedback.ErrKindTimeout, pagefeedback.ErrKindCancelled:
			default:
				t.Errorf("query %d: unexpected kind %q: %v", i, qe.Kind, out.Err)
			}
			continue
		}
		succeeded++
		if err := env.Check(s, out); err != nil {
			t.Error(err)
		}
	}
	if succeeded == 0 {
		t.Error("no query survived the overload")
	}
	st := env.Eng.AdmissionStats()
	if st.Active != 0 || st.Queued != 0 {
		t.Errorf("gate not drained: %+v", st)
	}
	if st.PeakQueued > cfg.MaxQueueDepth {
		t.Errorf("queue exceeded its bound: peak %d > %d", st.PeakQueued, cfg.MaxQueueDepth)
	}
	if total := st.Admitted + st.Rejected + st.TimedOut; total < queries {
		t.Errorf("gate accounting: admitted %d + rejected %d + timedOut %d < %d submissions",
			st.Admitted, st.Rejected, st.TimedOut, queries)
	}
}

// TestChaosBackoffDeterminism pins the retry path's determinism: the same
// transient burst at the same read position yields byte-identical stats
// (retries and simulated backoff time) run after run.
func TestChaosBackoffDeterminism(t *testing.T) {
	env := chaosEnv(t, pagefeedback.DefaultConfig(), 1000)
	s := Schedule{Name: "backoff-determinism", TransientAfter: 5, TransientLen: 3}
	first := env.Run(s)
	if first.Err != nil {
		t.Fatalf("absorbed burst failed: %v", first.Err)
	}
	if first.Res.Stats.Runtime.ReadRetries != 3 {
		t.Fatalf("ReadRetries = %d, want 3", first.Res.Stats.Runtime.ReadRetries)
	}
	for i := 0; i < 3; i++ {
		again := env.Run(s)
		if again.Err != nil {
			t.Fatalf("run %d: %v", i, again.Err)
		}
		if again.Res.Stats.Runtime.ReadRetries != first.Res.Stats.Runtime.ReadRetries {
			t.Fatalf("run %d: ReadRetries %d != %d", i,
				again.Res.Stats.Runtime.ReadRetries, first.Res.Stats.Runtime.ReadRetries)
		}
		if again.Res.Stats.Runtime.SimulatedIO != first.Res.Stats.Runtime.SimulatedIO {
			t.Fatalf("run %d: SimulatedIO %v != %v — backoff jitter is not deterministic", i,
				again.Res.Stats.Runtime.SimulatedIO, first.Res.Stats.Runtime.SimulatedIO)
		}
	}
}

// TestChaosPlanCacheParity runs one fault-schedule sweep against two engines
// over identical data — plan cache enabled vs disabled — with feedback
// application interleaved so cached entries go stale mid-sweep. Every
// schedule must produce the same outcome on both: same rows on success, an
// error of the same rendering on failure. A divergence means the cache
// changed semantics under faults (served a stale plan, leaked a fault into
// the template, or altered the read sequence a schedule pins faults to).
func TestChaosPlanCacheParity(t *testing.T) {
	const n = 1500
	offCfg := pagefeedback.DefaultConfig()
	offCfg.PlanCacheSize = -1
	cached := chaosEnv(t, pagefeedback.DefaultConfig(), n)
	uncached := chaosEnv(t, offCfg, n)

	reads := make([]int64, len(cached.Queries))
	for q := range cached.Queries {
		reads[q] = cached.CountReads(q)
	}
	schedules := GenerateSchedules(reads)
	for i, s := range schedules {
		a, b := cached.Run(s), uncached.Run(s)
		// Wall-clock-bounded schedules are exempt from outcome parity: the
		// cache legitimately makes the cached engine faster, so it can beat
		// a deadline the uncached engine misses. The invariant Check below
		// still applies to both outcomes.
		parity := s.Timeout == 0
		switch {
		case !parity:
		case (a.Err == nil) != (b.Err == nil):
			t.Fatalf("%s: cached err=%v, uncached err=%v", s, a.Err, b.Err)
		case a.Err != nil:
			if a.Err.Error() != b.Err.Error() {
				t.Errorf("%s: error diverges: %q vs %q", s, a.Err, b.Err)
			}
		case !equalStrings(a.Rows, b.Rows):
			t.Errorf("%s: rows diverge", s)
		}
		if err := cached.Check(s, a); err != nil {
			t.Errorf("cached: %v", err)
		}
		// Every 40 schedules, land fresh feedback on both engines: the
		// cached engine's entries all go stale and must be re-optimized
		// while the sweep keeps injecting faults.
		if i%40 == 39 {
			for q := range cached.Queries {
				oa := cached.Run(Schedule{Name: "refeed", Query: q})
				ob := uncached.Run(Schedule{Name: "refeed", Query: q})
				if oa.Err != nil || ob.Err != nil {
					t.Fatalf("refeed failed: %v / %v", oa.Err, ob.Err)
				}
				cached.Eng.ApplyFeedback(oa.Res)
				uncached.Eng.ApplyFeedback(ob.Res)
			}
		}
	}
	st := cached.Eng.PlanCacheStats()
	if st.Hits == 0 || st.Stale == 0 {
		t.Errorf("sweep did not exercise the cache (hits and staleness both required): %+v", st)
	}
	if st := uncached.Eng.PlanCacheStats(); st != (pagefeedback.PlanCacheStats{}) {
		t.Errorf("cache-off engine has non-zero stats: %+v", st)
	}
}

// diffRuntime compares the deterministic slice of two runs' runtime stats —
// everything except wall-clock, queueing, pool-contention, prefetch, and the
// execution-shape diagnostics (BatchesProcessed, VectorizedOps, PlanCacheHit)
// that legitimately differ between the row and batch executors — and returns
// a description of the first divergence, or "" when they match.
func diffRuntime(a, b exec.RuntimeStats) string {
	type field struct {
		name string
		a, b any
	}
	for _, f := range []field{
		{"SimulatedIO", a.SimulatedIO, b.SimulatedIO},
		{"SimulatedCPU", a.SimulatedCPU, b.SimulatedCPU},
		{"SimulatedTotal", a.SimulatedTotal, b.SimulatedTotal},
		{"PhysicalReads", a.PhysicalReads, b.PhysicalReads},
		{"RandomReads", a.RandomReads, b.RandomReads},
		{"LogicalReads", a.LogicalReads, b.LogicalReads},
		{"RowsTouched", a.RowsTouched, b.RowsTouched},
		{"QuarantinedMonitors", a.QuarantinedMonitors, b.QuarantinedMonitors},
		{"ReadRetries", a.ReadRetries, b.ReadRetries},
		{"MemPeakBytes", a.MemPeakBytes, b.MemPeakBytes},
		{"ShedMonitors", a.ShedMonitors, b.ShedMonitors},
		{"CompiledPredicates", a.CompiledPredicates, b.CompiledPredicates},
	} {
		if f.a != f.b {
			return fmt.Sprintf("%s: %v vs %v", f.name, f.a, f.b)
		}
	}
	return ""
}

// exportFeedback renders an engine's persisted feedback state.
func exportFeedback(t *testing.T, eng *pagefeedback.Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.ExportFeedback(&buf); err != nil {
		t.Fatalf("ExportFeedback: %v", err)
	}
	return buf.Bytes()
}

// TestChaosVectorizedParity runs the fault-schedule sweep against two engines
// over identical data — one on the default batch-at-a-time executor, one
// forced onto the row-at-a-time path — with feedback application interleaved.
// The two executors must be observationally indistinguishable: same error-ness
// and error rendering, same rows, the same deterministic runtime stats
// (rows touched, reads, simulated cost, memory peak), byte-identical DPC
// feedback per run, and byte-identical exported feedback state after every
// refeed round. A divergence means batching changed semantics, not just shape.
func TestChaosVectorizedParity(t *testing.T) {
	const n = 1500
	vec := chaosEnv(t, pagefeedback.DefaultConfig(), n)
	row := chaosEnv(t, pagefeedback.DefaultConfig(), n)

	reads := make([]int64, len(vec.Queries))
	for q := range vec.Queries {
		reads[q] = vec.CountReads(q)
	}
	schedules := GenerateSchedules(reads)
	sawBatches := false
	for i, s := range schedules {
		sr := s
		sr.RowPath = true
		a, b := vec.Run(s), row.Run(sr)
		// Wall-clock-bounded schedules are exempt from outcome parity (the
		// paths are allowed to differ in speed); the invariant Check below
		// still applies to both outcomes.
		parity := s.Timeout == 0
		switch {
		case !parity:
		case (a.Err == nil) != (b.Err == nil):
			t.Fatalf("%s: vectorized err=%v, row err=%v", s, a.Err, b.Err)
		case a.Err != nil:
			if a.Err.Error() != b.Err.Error() {
				t.Errorf("%s: error diverges: %q vs %q", s, a.Err, b.Err)
			}
		default:
			if !equalStrings(a.Rows, b.Rows) {
				t.Errorf("%s: rows diverge", s)
			}
			if got, want := renderDPC(a.Res), renderDPC(b.Res); got != want {
				t.Errorf("%s: DPC feedback diverges:\n vec: %s\n row: %s", s, got, want)
			}
			if d := diffRuntime(a.Res.Stats.Runtime, b.Res.Stats.Runtime); d != "" {
				t.Errorf("%s: runtime stats diverge: %s", s, d)
			}
			if a.Res.Stats.Runtime.BatchesProcessed > 0 {
				sawBatches = true
			}
			if rt := b.Res.Stats.Runtime; rt.BatchesProcessed != 0 || rt.VectorizedOps != 0 {
				t.Errorf("%s: row path reported batch stats: %d batches, %d vectorized ops",
					s, rt.BatchesProcessed, rt.VectorizedOps)
			}
		}
		if err := vec.Check(s, a); err != nil {
			t.Errorf("vectorized: %v", err)
		}
		if err := row.Check(sr, b); err != nil {
			t.Errorf("row: %v", err)
		}
		// A wall-clock race can let one path finish inside a timeout the
		// other misses; Check has then landed that run's feedback (and its
		// histogram observations) on one engine only. Mirror the surviving
		// result to the other engine, so the export comparison below sees
		// content divergence, never speed divergence. Parity schedules
		// cannot get here asymmetric — differing error-ness is fatal above.
		if a.Err == nil && b.Err != nil {
			row.Eng.ApplyFeedback(a.Res)
		} else if b.Err == nil && a.Err != nil {
			vec.Eng.ApplyFeedback(b.Res)
		}
		// Every 40 schedules, land fresh feedback on both engines and compare
		// the exported feedback state byte for byte.
		if i%40 == 39 {
			for q := range vec.Queries {
				oa := vec.Run(Schedule{Name: "refeed", Query: q})
				ob := row.Run(Schedule{Name: "refeed", Query: q, RowPath: true})
				if oa.Err != nil || ob.Err != nil {
					t.Fatalf("refeed failed: %v / %v", oa.Err, ob.Err)
				}
				vec.Eng.ApplyFeedback(oa.Res)
				row.Eng.ApplyFeedback(ob.Res)
			}
			if !bytes.Equal(exportFeedback(t, vec.Eng), exportFeedback(t, row.Eng)) {
				t.Fatalf("exported feedback diverges after refeed round at schedule %d", i)
			}
		}
	}
	if !sawBatches {
		t.Error("no successful vectorized run processed a batch")
	}
	// Parallel spot-check: fault-free schedules must agree across paths at
	// degree 4 too (rows and feedback; stats carry timing-dependent prefetch
	// and pool counters, so they are out of scope here).
	for q := range vec.Queries {
		s := Schedule{Name: "par-spot", Query: q, Parallelism: 4}
		sr := s
		sr.RowPath = true
		a, b := vec.Run(s), row.Run(sr)
		if a.Err != nil || b.Err != nil {
			t.Fatalf("%s: parallel spot-check failed: %v / %v", s, a.Err, b.Err)
		}
		if !equalStrings(a.Rows, b.Rows) {
			t.Errorf("%s: parallel rows diverge", s)
		}
		if got, want := renderDPC(a.Res), renderDPC(b.Res); got != want {
			t.Errorf("%s: parallel DPC feedback diverges:\n vec: %s\n row: %s", s, got, want)
		}
	}
}
