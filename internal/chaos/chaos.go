// Package chaos is a deterministic fault-schedule harness for the engine.
//
// A Schedule pins every fault to an exact position in a query's execution —
// "the k-th physical read fails", "a transient burst of length 3 starts
// after read 17", "the context is cancelled at read 9" — so a sweep over
// schedules explores the engine's failure surface reproducibly, with no
// reliance on timing or randomness. Each schedule runs real queries through
// the public engine API, serially and in parallel, and the harness asserts
// the global robustness invariants:
//
//   - every outcome is either the correct result or a typed *QueryError —
//     never a panic, never silently wrong rows;
//   - no buffer-pool pins leak, whatever the failure point;
//   - the feedback cache is never updated by a failed or degraded run;
//   - successful runs produce feedback byte-identical to a fault-free
//     baseline, serial or parallel, cold or warm.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"pagefeedback"
)

// Schedule is one deterministic fault-injection plan for one query. The zero
// value of every fault field means "that fault is off"; a zero-value
// Schedule is a plain fault-free run.
type Schedule struct {
	// Name labels the schedule in failure reports.
	Name string
	// Query indexes Env.Queries.
	Query int
	// FailReadAfter > 0 lets that many physical reads succeed, then fails
	// every subsequent read with a hard injected fault.
	FailReadAfter int64
	// TransientLen > 0 injects a burst of that many transient read faults
	// starting after TransientAfter successful ReadPage calls. Bursts no
	// longer than the backoff policy's retry limit are absorbed; longer ones
	// surface as storage errors.
	TransientAfter int64
	TransientLen   int64
	// CancelAtRead > 0 cancels the query's context at exactly that ReadPage
	// call (1-based).
	CancelAtRead int64
	// Timeout bounds the query's wall-clock time (0 = none).
	Timeout time.Duration
	// MemBudget bounds the query's operator memory in bytes (0 = none).
	MemBudget int64
	// ShedLevel degrades monitoring along the mechanism lattice (0-3).
	ShedLevel int
	// OverheadBudget caps per-monitor observation time; tiny values force
	// mid-query self-shedding.
	OverheadBudget time.Duration
	// Parallelism is the intra-query degree (0 = serial).
	Parallelism int
	// WarmCache skips the cold-cache reset before the run.
	WarmCache bool
	// RowPath forces the row-at-a-time executor (batch execution off).
	RowPath bool
}

// String renders a compact identity for error messages.
func (s Schedule) String() string {
	return fmt.Sprintf("%s{q%d read=%d trans=%d@%d cancel=%d to=%v mem=%d shed=%d ob=%v par=%d warm=%v row=%v}",
		s.Name, s.Query, s.FailReadAfter, s.TransientLen, s.TransientAfter,
		s.CancelAtRead, s.Timeout, s.MemBudget, s.ShedLevel, s.OverheadBudget,
		s.Parallelism, s.WarmCache, s.RowPath)
}

// Outcome is the observed result of running one schedule.
type Outcome struct {
	// Err is the query error, nil on success.
	Err error
	// Rows is the canonical (order-insensitive) rendering of the result.
	Rows []string
	// Res is the raw result (nil on error).
	Res *pagefeedback.Result
}

// Env is a workload the sweep runs schedules against: one engine, a fixed
// set of queries, and their fault-free baselines.
type Env struct {
	Eng     *pagefeedback.Engine
	Queries []string

	baseRows [][]string // canonical rows per query, fault-free serial run
	baseDPC  []string   // canonical DPC feedback per query
	baseSig  string     // feedback-cache signature after applying baselines
}

// BuildEnv creates an engine with the standard chaos workload: a clustered
// table t(c1,c2,c5,pad) of n rows — c2 correlated with the clustering key,
// c5 a random permutation, both indexed — and a join partner u(c1,c2). The
// query set covers a predicate scan, an index-driven selection, a join, and
// a memory-hungry group-aggregate.
func BuildEnv(cfg pagefeedback.Config, n int) (*Env, error) {
	eng := pagefeedback.New(cfg)
	schema := pagefeedback.NewSchema(
		pagefeedback.Column{Name: "c1", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "c2", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "c5", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "pad", Kind: pagefeedback.KindString},
	)
	if _, err := eng.CreateClusteredTable("t", schema, []string{"c1"}); err != nil {
		return nil, err
	}
	perm := rand.New(rand.NewSource(11)).Perm(n)
	pad := strings.Repeat("x", 40)
	rows := make([]pagefeedback.Row, n)
	for i := range rows {
		rows[i] = pagefeedback.Row{
			pagefeedback.Int64(int64(i)), pagefeedback.Int64(int64(i)),
			pagefeedback.Int64(int64(perm[i])), pagefeedback.Str(pad),
		}
	}
	if err := eng.Load("t", rows); err != nil {
		return nil, err
	}
	for _, c := range []string{"c2", "c5"} {
		if _, err := eng.CreateIndex("ix_"+c, "t", c); err != nil {
			return nil, err
		}
	}
	uschema := pagefeedback.NewSchema(
		pagefeedback.Column{Name: "c1", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "c2", Kind: pagefeedback.KindInt},
	)
	if _, err := eng.CreateClusteredTable("u", uschema, []string{"c1"}); err != nil {
		return nil, err
	}
	urows := make([]pagefeedback.Row, n/4)
	for i := range urows {
		urows[i] = pagefeedback.Row{pagefeedback.Int64(int64(i)), pagefeedback.Int64(int64(i * 4))}
	}
	if err := eng.Load("u", urows); err != nil {
		return nil, err
	}
	if err := eng.Analyze("t", "u"); err != nil {
		return nil, err
	}
	env := &Env{
		Eng: eng,
		Queries: []string{
			fmt.Sprintf("SELECT COUNT(pad) FROM t WHERE c2 < %d", n/8),
			fmt.Sprintf("SELECT c1, c5 FROM t WHERE c5 < %d", n/50),
			fmt.Sprintf("SELECT COUNT(pad) FROM t, u WHERE u.c1 < %d AND u.c2 = t.c2", n/16),
			fmt.Sprintf("SELECT c2, COUNT(*) FROM t WHERE c1 < %d GROUP BY c2", n/4),
		},
	}
	if err := env.captureBaselines(); err != nil {
		return nil, err
	}
	return env, nil
}

// captureBaselines records the fault-free serial outcome of every query and
// the cache signature after feeding all of them back. It runs two passes:
// the first drives the optimizer to its post-feedback steady state (feedback
// can flip plan choices, and with them the monitoring mechanisms), the
// second captures the baselines the sweep is compared against.
func (e *Env) captureBaselines() error {
	for pass := 0; pass < 2; pass++ {
		e.baseRows = e.baseRows[:0]
		e.baseDPC = e.baseDPC[:0]
		for i, q := range e.Queries {
			out := e.Run(Schedule{Name: "baseline", Query: i})
			if out.Err != nil {
				return fmt.Errorf("chaos: baseline for %q failed: %w", q, out.Err)
			}
			e.baseRows = append(e.baseRows, out.Rows)
			e.baseDPC = append(e.baseDPC, renderDPC(out.Res))
			e.Eng.ApplyFeedback(out.Res)
		}
	}
	e.baseSig = e.CacheSignature()
	return nil
}

// Run executes one schedule and returns the outcome. All fault injection is
// disarmed and prefetch drained before it returns, whatever happened.
func (e *Env) Run(s Schedule) Outcome {
	return e.RunContext(context.Background(), s)
}

// RunContext is Run under a caller-supplied context; cancelling it aborts
// the schedule's query like any other engine cancellation.
func (e *Env) RunContext(ctx context.Context, s Schedule) Outcome {
	return e.runQuery(ctx, e.Queries[s.Query], s)
}

func (e *Env) runQuery(parent context.Context, sql string, s Schedule) Outcome {
	disk := e.Eng.Pool().Disk()
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	if at := s.CancelAtRead; at > 0 {
		disk.SetReadHook(func(seq int64) {
			if seq == at {
				cancel()
			}
		})
	}
	if s.FailReadAfter > 0 {
		disk.FailReadsAfter(s.FailReadAfter)
	}
	if s.TransientLen > 0 {
		disk.InjectTransientFaultsAt(s.TransientAfter, s.TransientLen)
	}
	defer func() {
		disk.FailReadsAfter(-1)
		disk.FailWritesAfter(-1)
		disk.InjectTransientFaults(0)
		disk.SetReadHook(nil)
		e.Eng.Pool().DrainPrefetch()
	}()
	opts := &pagefeedback.RunOptions{
		MonitorAll:            true,
		SampleFraction:        1.0,
		Timeout:               s.Timeout,
		MemBudget:             s.MemBudget,
		ShedLevel:             s.ShedLevel,
		MonitorOverheadBudget: s.OverheadBudget,
		Parallelism:           s.Parallelism,
		WarmCache:             s.WarmCache,
	}
	if s.RowPath {
		opts.Vectorized = pagefeedback.VecOff
	}
	res, err := e.Eng.QueryContext(ctx, sql, opts)
	if err != nil {
		return Outcome{Err: err}
	}
	return Outcome{Rows: canonicalRows(res), Res: res}
}

// Check asserts every schedule-level invariant against the outcome,
// returning a descriptive error on the first violation.
func (e *Env) Check(s Schedule, out Outcome) error {
	if out.Err != nil {
		var qe *pagefeedback.QueryError
		if !errors.As(out.Err, &qe) {
			return fmt.Errorf("%s: untyped error %T: %v", s, out.Err, out.Err)
		}
		if sig := e.CacheSignature(); sig != e.baseSig {
			return fmt.Errorf("%s: failed run changed the feedback cache", s)
		}
	} else {
		want := e.baseRows[s.Query]
		if !equalStrings(out.Rows, want) {
			return fmt.Errorf("%s: wrong rows: got %d, want %d", s, len(out.Rows), len(want))
		}
		for _, r := range out.Res.DPC {
			if r.Shed && !r.Degraded {
				return fmt.Errorf("%s: shed result not marked Degraded (%s)", s, r.Mechanism)
			}
		}
		// Feeding a successful run back must reproduce the baseline cache:
		// shed/degraded results are skipped, everything else is baseline-
		// identical because the monitors are deterministic.
		e.Eng.ApplyFeedback(out.Res)
		if sig := e.CacheSignature(); sig != e.baseSig {
			return fmt.Errorf("%s: successful run perturbed the feedback cache", s)
		}
		if s.ShedLevel == 0 && s.OverheadBudget == 0 {
			if got := renderDPC(out.Res); got != e.baseDPC[s.Query] {
				return fmt.Errorf("%s: DPC feedback differs from baseline:\n got: %s\nwant: %s",
					s, got, e.baseDPC[s.Query])
			}
		}
	}
	if n := e.Eng.Pool().Pinned(); n != 0 {
		return fmt.Errorf("%s: %d page pins leaked", s, n)
	}
	return nil
}

// CacheSignature renders the feedback cache's full contents; two equal
// signatures mean identical caches.
func (e *Env) CacheSignature() string {
	var b strings.Builder
	for _, en := range e.Eng.FeedbackCache().Entries() {
		fmt.Fprintf(&b, "%s|%s|%d|%d|%s|%v|%d\n",
			en.Table, en.Predicate, en.Cardinality, en.DPC, en.Mechanism, en.Exact, en.TableVersion)
	}
	return b.String()
}

// CountReads measures how many physical reads a fault-free cold serial run
// of query q issues — the domain fault positions are drawn from.
func (e *Env) CountReads(q int) int64 {
	disk := e.Eng.Pool().Disk()
	var max int64
	disk.SetReadHook(func(seq int64) {
		if seq > max {
			max = seq
		}
	})
	defer disk.SetReadHook(nil)
	out := e.Run(Schedule{Name: "probe", Query: q})
	if out.Err != nil {
		return 0
	}
	return max
}

// GenerateSchedules enumerates the standard sweep for the environment:
// reads[i] is query i's fault-free read count (from CountReads). Fault
// positions are spread deterministically across each query's read sequence.
func GenerateSchedules(reads []int64) []Schedule {
	var out []Schedule
	add := func(s Schedule) { out = append(out, s) }
	positions := func(r int64, k int) []int64 {
		if r <= 0 {
			r = 16
		}
		ps := make([]int64, 0, k)
		for i := 0; i < k; i++ {
			p := 1 + (r-1)*int64(i)/int64(k-1)
			ps = append(ps, p)
		}
		return ps
	}
	for q, r := range reads {
		for _, p := range positions(r, 8) {
			add(Schedule{Name: "hard-read", Query: q, FailReadAfter: p})
		}
		for _, p := range []int64{0, r / 4, r / 2, 3 * r / 4} {
			for _, l := range []int64{1, 3, 5} {
				add(Schedule{Name: "transient", Query: q, TransientAfter: p, TransientLen: l})
			}
		}
		for _, p := range positions(r, 6) {
			add(Schedule{Name: "cancel", Query: q, CancelAtRead: p})
		}
		for _, to := range []time.Duration{time.Nanosecond, 100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond} {
			add(Schedule{Name: "timeout", Query: q, Timeout: to})
		}
		for _, m := range []int64{512, 8 << 10, 64 << 10, 1 << 20, 8 << 20} {
			add(Schedule{Name: "mem", Query: q, MemBudget: m})
		}
		for lvl := 1; lvl <= 3; lvl++ {
			add(Schedule{Name: "shed", Query: q, ShedLevel: lvl})
		}
		for _, ob := range []time.Duration{time.Nanosecond, 100 * time.Microsecond} {
			add(Schedule{Name: "overhead", Query: q, OverheadBudget: ob})
		}
		// Composite schedules: independent failure mechanisms landing in the
		// same run, probing interactions between recovery paths.
		for _, p := range positions(r, 4) {
			add(Schedule{Name: "trans+cancel", Query: q,
				TransientAfter: p / 2, TransientLen: 3, CancelAtRead: p})
			add(Schedule{Name: "hard+warm", Query: q, FailReadAfter: p, WarmCache: true})
			add(Schedule{Name: "mem+trans", Query: q,
				MemBudget: 32 << 10, TransientAfter: p, TransientLen: 2})
		}
	}
	return out
}

// canonicalRows renders and sorts the result rows so comparisons ignore row
// order (parallel runs interleave partitions).
func canonicalRows(res *pagefeedback.Result) []string {
	rows := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		var b strings.Builder
		for i, v := range r {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		rows = append(rows, b.String())
	}
	sort.Strings(rows)
	return rows
}

// renderDPC renders the monitored feedback of a run, sorted, for
// byte-identical comparison against the baseline.
func renderDPC(res *pagefeedback.Result) string {
	lines := make([]string, 0, len(res.DPC))
	for _, r := range res.DPC {
		expr := r.Request.Pred.String()
		if r.Request.Join {
			expr = "<join>"
		}
		lines = append(lines, fmt.Sprintf("%s|%s|%s|%d|%d|%v|%v",
			r.Request.Table, expr, r.Mechanism, r.DPC, r.Cardinality, r.Exact, r.Degraded))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
