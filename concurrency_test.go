package pagefeedback

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentQueriesSeparateEngines runs full query workloads on
// independent engines in parallel. Exercised under -race in CI: engines
// must share no hidden mutable state (package-level caches, globals).
func TestConcurrentQueriesSeparateEngines(t *testing.T) {
	const engines = 3
	envs := make([]*Engine, engines)
	for i := range envs {
		envs[i] = buildTestDB(t, 5000)
	}
	var wg sync.WaitGroup
	errs := make(chan error, engines)
	for _, eng := range envs {
		wg.Add(1)
		go func(eng *Engine) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				want := int64(500 * (i + 1))
				sql := fmt.Sprintf("SELECT COUNT(padding) FROM t WHERE c2 < %d", want)
				res, err := eng.Query(sql, &RunOptions{MonitorAll: i%2 == 0})
				if err != nil {
					errs <- err
					return
				}
				if got := res.Rows[0][0].Int; got != want {
					errs <- fmt.Errorf("count = %d, want %d", got, want)
					return
				}
			}
		}(eng)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentReadOnlyQueriesOneEngine runs read-only queries against ONE
// engine from many goroutines. WarmCache keeps each query from resetting
// the shared buffer pool under its neighbors; beyond that the pool, disk
// stats, and catalog must be safe for concurrent readers (-race verifies).
func TestConcurrentReadOnlyQueriesOneEngine(t *testing.T) {
	eng := buildTestDB(t, 8000)
	// Warm the cache once so concurrent runs find their pages resident.
	if _, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 8000", nil); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				want := int64(100 * (w + i + 1))
				sql := fmt.Sprintf("SELECT COUNT(padding) FROM t WHERE c2 < %d", want)
				res, err := eng.Query(sql, &RunOptions{WarmCache: true})
				if err != nil {
					errs <- err
					return
				}
				if got := res.Rows[0][0].Int; got != want {
					errs <- fmt.Errorf("worker %d: count = %d, want %d", w, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	assertNoPins(t, eng)
}
