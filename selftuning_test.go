package pagefeedback

import (
	"testing"

	"pagefeedback/internal/plan"
)

// TestSelfTuningHistogramGeneralizes exercises the §VI extension: feedback
// from one query improves the page-count estimate — and the plan — for a
// DIFFERENT predicate on the same column, with no exact injection for it.
func TestSelfTuningHistogramGeneralizes(t *testing.T) {
	eng := buildTestDB(t, 20000)

	// Without any feedback, both queries on the correlated column pick a
	// Table Scan (the Yao model says hundreds of pages).
	probe := func(sql string) plan.Node {
		q, err := eng.ParseQuery(sql)
		if err != nil {
			t.Fatal(err)
		}
		node, err := eng.PlanQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		return node.(*plan.Agg).Input
	}
	const trained = "SELECT COUNT(padding) FROM t WHERE c2 < 300"
	const similar = "SELECT COUNT(padding) FROM t WHERE c2 BETWEEN 5000 AND 5400"
	if _, isScan := probe(similar).(*plan.Scan); !isScan {
		t.Fatalf("pre-feedback plan for similar query is %s", probe(similar).Label())
	}

	// Monitor the first query and apply feedback.
	res, err := eng.Query(trained, &RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.ApplyFeedback(res)

	// The similar-but-different predicate now estimates through the
	// learned histogram: density ~1/rowsPerPage, so the Seek wins.
	access := probe(similar)
	seek, isSeek := access.(*plan.Seek)
	if !isSeek {
		t.Fatalf("post-feedback plan for similar query is %s, want Seek", access.Label())
	}
	// The histogram estimate should be in the right ballpark: ~401 rows on
	// ~6 contiguous pages (not the ~hundreds Yao predicts).
	if seek.Estm.DPC > 60 {
		t.Errorf("histogram-informed DPC estimate = %.0f, want small", seek.Estm.DPC)
	}

	// And the generalized plan is genuinely faster.
	resScanByInjection := func() *Result {
		eng.Optimizer().InjectDPC("t", mustParsePred(t, eng, similar), 1e12) // force scan
		r, err := eng.Query(similar, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng.Optimizer().ClearInjections()
		return r
	}()
	// Re-apply feedback lost by ClearInjections (histograms survive, but
	// re-check the plan flows through them).
	res2, err := eng.Query(similar, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows[0][0].Int != 401 {
		t.Errorf("similar query count = %d, want 401", res2.Rows[0][0].Int)
	}
	if res2.SimulatedTime >= resScanByInjection.SimulatedTime {
		t.Errorf("generalized plan (%v) not faster than scan (%v)",
			res2.SimulatedTime, resScanByInjection.SimulatedTime)
	}

	// The learned histogram is inspectable.
	h, ok := eng.Optimizer().DPCHistogram("t", "c2")
	if !ok || h.Len() == 0 {
		t.Error("no learned histogram for t.c2")
	}

	// ClearDPCHistograms reverts to analytical estimates.
	eng.Optimizer().ClearDPCHistograms()
	eng.Optimizer().ClearInjections()
	if _, isScan := probe(similar).(*plan.Scan); !isScan {
		t.Error("after clearing histograms the analytical scan choice should return")
	}
}

func mustParsePred(t *testing.T, eng *Engine, sql string) Conjunction {
	t.Helper()
	q, err := eng.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	return q.Pred
}

// TestSelfTuningDoesNotMisleadUncorrelated: feedback on the uncorrelated
// column must not trick the optimizer into an index plan for other ranges.
func TestSelfTuningDoesNotMisleadUncorrelated(t *testing.T) {
	eng := buildTestDB(t, 20000)
	res, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c5 < 600",
		&RunOptions{MonitorAll: true, SampleFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	eng.ApplyFeedback(res)
	q, _ := eng.ParseQuery("SELECT COUNT(padding) FROM t WHERE c5 BETWEEN 10000 AND 10600")
	node, err := eng.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, isScan := node.(*plan.Agg).Input.(*plan.Scan); !isScan {
		t.Errorf("uncorrelated column flipped to %s after histogram feedback",
			node.(*plan.Agg).Input.Label())
	}
}
