package pagefeedback

import (
	"strings"
	"testing"
)

// FuzzImportFeedback drives ImportFeedback with arbitrary bytes. Whatever
// the input — truncated JSON, hostile numbers, duplicate keys, version skew
// — the importer must never panic, and a rejected dump must leave the
// engine exactly as it was (empty cache, no injections): import is all or
// nothing.
func FuzzImportFeedback(f *testing.F) {
	f.Add(`{"version":1,"entries":[{"table":"t","atoms":[{"col":"c2","op":"<","val":{"kind":"int","int":5}}],"dpc":3,"cardinality":10}]}`)
	f.Add(`{"version":1,"entries":[{"table":"t","atoms":[{"col":"c2","op":"BETWEEN","val":{"kind":"int","int":1},"val2":{"kind":"int","int":9}}],"dpc":2}]}`)
	f.Add(`{"version":2}`)
	f.Add(`{"version":1,"entries":[{"table":"","atoms":[]}]}`)
	f.Add(`{"version":1,"entries":[{"table":"t","atoms":[{"col":"c2","op":"<","val":{"kind":"int","int":5}}],"dpc":-1}]}`)
	f.Add(`{"version":1,"histograms":[{"table":"t","column":"c2","observations":[{"Lo":9,"Hi":1,"Rows":5,"DPC":2}]}]}`)
	f.Add(`{"version":1,"joinCurves":[{"table":"t","joinCol":"c2","points":[{"Rows":-4,"DPC":1}]}]}`)
	f.Add(`not json at all`)
	f.Add(`{"version":1,"entries":[{"table":"t","atoms":[{"col":"c2","op":"IN","val":{"kind":"int"},"list":[{"kind":"str","str":"x"},{"kind":"date","int":9}]}],"dpc":1}]}`)

	f.Fuzz(func(t *testing.T, dump string) {
		eng := New(Config{PoolPages: 64})
		n, err := eng.ImportFeedback(strings.NewReader(dump))
		if err != nil {
			// Rejected: nothing may have been applied.
			if n != 0 {
				t.Fatalf("failed import reported %d entries", n)
			}
			if got := eng.FeedbackCache().Len(); got != 0 {
				t.Fatalf("failed import stored %d cache entries", got)
			}
			return
		}
		if n != eng.FeedbackCache().Len() {
			t.Fatalf("import reported %d entries, cache holds %d", n, eng.FeedbackCache().Len())
		}
	})
}
