package pagefeedback

import (
	"strings"
	"testing"

	"pagefeedback/internal/exec"
)

// buildVecDB is buildTestDB plus a join partner u(c1, fk) whose fk column is
// unindexed on both sides of the join it is used in, forcing a hash join.
func buildVecDB(t *testing.T, n int) *Engine {
	t.Helper()
	eng := buildTestDB(t, n)
	uschema := NewSchema(
		Column{Name: "c1", Kind: KindInt},
		Column{Name: "fk", Kind: KindInt},
	)
	if _, err := eng.CreateClusteredTable("u", uschema, []string{"c1"}); err != nil {
		t.Fatal(err)
	}
	urows := make([]Row, n/4)
	for i := range urows {
		urows[i] = Row{Int64(int64(i)), Int64(int64((i * 7) % n))}
	}
	if err := eng.Load("u", urows); err != nil {
		t.Fatal(err)
	}
	if err := eng.Analyze("u"); err != nil {
		t.Fatal(err)
	}
	return eng
}

// vecParityQueries covers every vectorized operator plus the row-only ones
// behind the adapter: predicate scans, an index-driven selection, projection,
// LIMIT, ORDER BY (Sort stays row-at-a-time), GROUP BY, aggregation, and a
// hash join on unindexed columns.
var vecParityQueries = []string{
	"SELECT COUNT(padding) FROM t WHERE c2 < 2000",
	"SELECT c1, c5 FROM t WHERE c5 < 500",
	"SELECT c1 FROM t WHERE c5 < 100",
	"SELECT c2, COUNT(*) FROM t WHERE c1 < 3000 GROUP BY c2",
	"SELECT c1, c2 FROM t WHERE c1 < 5000 LIMIT 37",
	"SELECT c1, c5 FROM t WHERE c5 < 300 ORDER BY c5",
	"SELECT COUNT(padding) FROM t, u WHERE u.c1 < 500 AND u.fk = t.c5",
}

// renderRows renders result rows in order — the row and batch paths must
// agree on order too, not just content.
func renderRows(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		var b strings.Builder
		for i, v := range r {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		out = append(out, b.String())
	}
	return out
}

// renderDPCResults renders the monitored feedback in result order.
func renderDPCResults(res *Result) []string {
	out := make([]string, 0, len(res.DPC))
	for _, r := range res.DPC {
		e := r.Request.Pred.String()
		if r.Request.Join {
			e = "<join>"
		}
		out = append(out, strings.Join([]string{
			r.Request.Table, e, r.Mechanism,
		}, "|")+"|"+renderInt(r.DPC)+"|"+renderInt(r.Cardinality))
	}
	return out
}

func renderInt(v int64) string { return Int64(v).String() }

// deterministicRuntime zeroes the fields of a runtime-stats record that are
// legitimately path- or timing-dependent, leaving the slice both executors
// must agree on byte for byte: simulated cost, read counts, rows touched,
// memory peak, monitor accounting, compiled predicates.
func deterministicRuntime(rt exec.RuntimeStats) exec.RuntimeStats {
	rt.QueueWait, rt.QueueDepth = 0, 0
	rt.PoolWaits, rt.PoolWaitTime = 0, 0
	rt.PrefetchedPages = 0
	rt.PlanCacheHit = false
	rt.BatchesProcessed, rt.VectorizedOps = 0, 0
	return rt
}

// TestVectorizedRowParity runs the parity query sequence under the default
// batch executor on one engine and under VecOff on a second engine over
// identical data, and requires bit-for-bit agreement on everything
// observable: row content and order, monitored DPC feedback, and the
// deterministic runtime stats — rows touched above all, since per-operator
// CPU accounting is the easiest thing for a batch rewrite to skew. (Two
// engines, not two interleaved runs on one: the IO model classifies a
// query's first read as sequential or random based on where the previous
// query left the disk head, so only identical run sequences compare.)
func TestVectorizedRowParity(t *testing.T) {
	vecEng := buildVecDB(t, 12000)
	rowEng := buildVecDB(t, 12000)
	for _, q := range vecParityQueries {
		vec, err := vecEng.Query(q, &RunOptions{MonitorAll: true})
		if err != nil {
			t.Fatalf("%s (vectorized): %v", q, err)
		}
		row, err := rowEng.Query(q, &RunOptions{MonitorAll: true, Vectorized: VecOff})
		if err != nil {
			t.Fatalf("%s (row): %v", q, err)
		}
		if got, want := renderRows(vec), renderRows(row); !equalStringSlices(got, want) {
			t.Errorf("%s: rows diverge between paths\n vec: %v\n row: %v", q, got, want)
		}
		if got, want := renderDPCResults(vec), renderDPCResults(row); !equalStringSlices(got, want) {
			t.Errorf("%s: DPC feedback diverges\n vec: %v\n row: %v", q, got, want)
		}
		vrt, rrt := vec.Stats.Runtime, row.Stats.Runtime
		if vrt.RowsTouched != rrt.RowsTouched {
			t.Errorf("%s: RowsTouched diverges: vectorized %d, row %d", q, vrt.RowsTouched, rrt.RowsTouched)
		}
		if got, want := deterministicRuntime(vrt), deterministicRuntime(rrt); got != want {
			t.Errorf("%s: runtime stats diverge\n vec: %+v\n row: %+v", q, got, want)
		}
		if vrt.BatchesProcessed == 0 || vrt.VectorizedOps == 0 {
			t.Errorf("%s: vectorized run reported no batch execution (%d batches, %d ops)",
				q, vrt.BatchesProcessed, vrt.VectorizedOps)
		}
		if rrt.BatchesProcessed != 0 || rrt.VectorizedOps != 0 {
			t.Errorf("%s: row run reported batch execution (%d batches, %d ops)",
				q, rrt.BatchesProcessed, rrt.VectorizedOps)
		}
	}
}

// TestVectorizedRawPathParity is TestVectorizedRowParity without monitors:
// unmonitored scans of fixed-width tables take the late-materializing raw
// path (the predicate judged on encoded page bytes, only survivors
// decoded), and that path must be invisible too — same rows, same rows
// touched, same deterministic runtime stats.
func TestVectorizedRawPathParity(t *testing.T) {
	vecEng := buildVecDB(t, 12000)
	rowEng := buildVecDB(t, 12000)
	for _, q := range vecParityQueries {
		vec, err := vecEng.Query(q, nil)
		if err != nil {
			t.Fatalf("%s (vectorized): %v", q, err)
		}
		row, err := rowEng.Query(q, &RunOptions{Vectorized: VecOff})
		if err != nil {
			t.Fatalf("%s (row): %v", q, err)
		}
		if got, want := renderRows(vec), renderRows(row); !equalStringSlices(got, want) {
			t.Errorf("%s: rows diverge between paths\n vec: %v\n row: %v", q, got, want)
		}
		vrt, rrt := vec.Stats.Runtime, row.Stats.Runtime
		if vrt.RowsTouched != rrt.RowsTouched {
			t.Errorf("%s: RowsTouched diverges: vectorized %d, row %d", q, vrt.RowsTouched, rrt.RowsTouched)
		}
		if got, want := deterministicRuntime(vrt), deterministicRuntime(rrt); got != want {
			t.Errorf("%s: runtime stats diverge\n vec: %+v\n row: %+v", q, got, want)
		}
	}
}

func equalStringSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExplainVectorizedLabels checks that EXPLAIN names the operators that
// would run batch-native, and drops the line entirely when the row path is
// forced.
func TestExplainVectorizedLabels(t *testing.T) {
	eng := buildVecDB(t, 4000)
	out, err := eng.ExplainWithOptions("SELECT c1, c5 FROM t WHERE c5 < 500", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "vectorized: ") {
		t.Fatalf("explain output has no vectorized line:\n%s", out)
	}
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "vectorized: ") {
			line = l
		}
	}
	if !strings.Contains(line, "Scan") {
		t.Errorf("vectorized line does not mention the scan: %q", line)
	}
	off, err := eng.ExplainWithOptions("SELECT c1, c5 FROM t WHERE c5 < 500", &RunOptions{Vectorized: VecOff})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(off, "vectorized: ") {
		t.Errorf("explain with VecOff still prints a vectorized line:\n%s", off)
	}
}
