package pagefeedback

import (
	"testing"
)

// TestPrepareBindAndExecute: a prepared statement executes with bound
// constants, agrees with the equivalent literal query, and hits the plan
// cache from the second execution on.
func TestPrepareBindAndExecute(t *testing.T) {
	eng := buildTestDB(t, 20000)
	stmt, err := eng.Prepare("SELECT COUNT(padding) FROM t WHERE c2 < ?")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", stmt.NumParams())
	}
	if ks := stmt.ParamKinds(); len(ks) != 1 || ks[0] != KindInt {
		t.Fatalf("ParamKinds = %v, want [KindInt]", ks)
	}

	lit, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 2000", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Query([]Value{Int64(2000)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != lit.Rows[0][0].Int {
		t.Errorf("prepared count = %d, literal = %d", res.Rows[0][0].Int, lit.Rows[0][0].Int)
	}
	// The literal run populated the cache with the same normalized template,
	// so the prepared execution above already hit; a re-bind hits too.
	if !res.PlanCacheHit {
		t.Error("prepared execution did not share the literal query's template")
	}
	res2, err := stmt.Query([]Value{Int64(2100)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows[0][0].Int != 2100 {
		t.Errorf("re-bound count = %d, want 2100", res2.Rows[0][0].Int)
	}
}

// TestPrepareNumberedAndMultiParam: $n placeholders, multiple parameters,
// and BETWEEN binding.
func TestPrepareNumberedAndMultiParam(t *testing.T) {
	eng := buildTestDB(t, 20000)
	stmt, err := eng.Prepare("SELECT COUNT(padding) FROM t WHERE c2 BETWEEN $1 AND $2")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 2 {
		t.Fatalf("NumParams = %d, want 2", stmt.NumParams())
	}
	res, err := stmt.Query([]Value{Int64(5000), Int64(5400)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 401 {
		t.Errorf("count = %d, want 401", res.Rows[0][0].Int)
	}
}

// TestPrepareArgErrors: wrong arity and type mismatches fail at bind time,
// before any execution.
func TestPrepareArgErrors(t *testing.T) {
	eng := buildTestDB(t, 20000)
	stmt, err := eng.Prepare("SELECT COUNT(padding) FROM t WHERE c2 < ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(nil, nil); err == nil {
		t.Error("zero args accepted by a one-parameter statement")
	}
	if _, err := stmt.Query([]Value{Int64(1), Int64(2)}, nil); err == nil {
		t.Error("two args accepted by a one-parameter statement")
	}
	if _, err := stmt.Query([]Value{Str("not-an-int")}, nil); err == nil {
		t.Error("string bound to an integer column")
	}
}

// TestPrepareZeroParams: SQL without placeholders prepares and runs.
func TestPrepareZeroParams(t *testing.T) {
	eng := buildTestDB(t, 20000)
	stmt, err := eng.Prepare("SELECT COUNT(padding) FROM t WHERE c2 < 700")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 0 {
		t.Fatalf("NumParams = %d, want 0", stmt.NumParams())
	}
	res, err := stmt.Query(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 700 {
		t.Errorf("count = %d, want 700", res.Rows[0][0].Int)
	}
}
