package pagefeedback

import (
	"strings"
	"testing"
)

// TestHeapTableEndToEnd runs the whole stack over a heap table: the paper's
// mechanisms are storage-kind agnostic (a Heap Scan has the same grouped
// page access property as a Clustered Index Scan).
func TestHeapTableEndToEnd(t *testing.T) {
	eng := New(DefaultConfig())
	schema := NewSchema(
		Column{Name: "k", Kind: KindInt},
		Column{Name: "grp", Kind: KindInt},
		Column{Name: "pad", Kind: KindString},
	)
	if _, err := eng.CreateHeapTable("h", schema); err != nil {
		t.Fatal(err)
	}
	const n = 20000
	pad := strings.Repeat("h", 60)
	rows := make([]Row, n)
	for i := 0; i < n; i++ {
		// k tracks arrival order (correlated with heap placement); grp is
		// scattered.
		rows[i] = Row{Int64(int64(i)), Int64(int64((i * 7919) % 100)), Str(pad)}
	}
	if err := eng.Load("h", rows); err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"k", "grp"} {
		if _, err := eng.CreateIndex("ix_"+c, "h", c); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Analyze("h"); err != nil {
		t.Fatal(err)
	}

	const q = "SELECT COUNT(pad) FROM h WHERE k < 400"
	res, err := eng.Query(q, &RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 400 {
		t.Fatalf("count = %d", res.Rows[0][0].Int)
	}
	// Arrival-order column on a heap: big overestimate, exactly like the
	// clustered case.
	x := res.Stats.DPC[0]
	if x.Estimated <= 3*x.Actual {
		t.Errorf("heap DPC est %d vs actual %d: expected overestimate", x.Estimated, x.Actual)
	}
	eng.ApplyFeedback(res)
	res2, err := eng.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows[0][0].Int != 400 {
		t.Fatalf("post-feedback count = %d", res2.Rows[0][0].Int)
	}
	if res2.SimulatedTime >= res.SimulatedTime {
		t.Errorf("no improvement on heap table: %v -> %v", res.SimulatedTime, res2.SimulatedTime)
	}
	// Scattered column: correct count, no plan change expected.
	res3, err := eng.Query("SELECT COUNT(pad) FROM h WHERE grp = 13", &RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Rows[0][0].Int != n/100 {
		t.Errorf("grp count = %d, want %d", res3.Rows[0][0].Int, n/100)
	}
}
