package pagefeedback

import (
	"sync"
	"time"

	"pagefeedback/internal/opt"
)

// defaultSlowLogSize bounds the slow-query log when Config leaves it zero.
const defaultSlowLogSize = 32

// SlowQuery is one captured slow query: the identifying text, its timing,
// and the full diagnostic payload — the annotated EXPLAIN ANALYZE tree and
// the raw span trace. Records are snapshots; mutating them does not affect
// the log.
type SlowQuery struct {
	// Query is the SQL text when the query came through the parser, or the
	// plan's root label for direct plan executions.
	Query string
	// At is when the query finished.
	At time.Time
	// WallTime and SimulatedTime mirror the Result fields.
	WallTime      time.Duration
	SimulatedTime time.Duration
	// Analyze is the rendered EXPLAIN ANALYZE tree for the run.
	Analyze string
	// Trace is the raw span listing (trace.Trace.Render).
	Trace string
}

// slowLog is a bounded FIFO of slow-query results. Capture stores the
// *Result only; rendering happens at read time, after the query path has
// finished enriching the result (query text, optimizer estimates).
type slowLog struct {
	mu      sync.Mutex
	max     int
	entries []slowEntry
}

type slowEntry struct {
	res *Result
	at  time.Time
}

func newSlowLog(size int) *slowLog {
	if size <= 0 {
		size = defaultSlowLogSize
	}
	return &slowLog{max: size}
}

// note appends a slow query, evicting the oldest past capacity.
func (l *slowLog) note(res *Result, at time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, slowEntry{res: res, at: at})
	if len(l.entries) > l.max {
		// Shift in place; the log is small (defaultSlowLogSize) and
		// eviction is one slot at a time.
		copy(l.entries, l.entries[1:])
		l.entries = l.entries[:l.max]
	}
}

// SlowQueries renders the captured slow queries, oldest first. Empty until
// Config.SlowQueryThreshold arms the log and a query exceeds it.
func (e *Engine) SlowQueries() []SlowQuery {
	e.slow.mu.Lock()
	entries := make([]slowEntry, len(e.slow.entries))
	copy(entries, e.slow.entries)
	e.slow.mu.Unlock()

	out := make([]SlowQuery, 0, len(entries))
	for _, ent := range entries {
		res := ent.res
		label := res.Plan.Label()
		if res.Query != nil {
			label = queryLabel(res.Query)
		}
		sq := SlowQuery{
			Query:         label,
			At:            ent.at,
			WallTime:      res.WallTime,
			SimulatedTime: res.SimulatedTime,
			Analyze:       FormatAnalyze(res, AnalyzeOptions{}),
		}
		if res.Trace != nil {
			sq.Trace = res.Trace.Render()
		}
		out = append(out, sq)
	}
	return out
}

// queryLabel renders a compact identifying description of a parsed query
// (the parser does not retain the original SQL text).
func queryLabel(q *opt.Query) string {
	s := q.Table
	if len(q.Pred.Atoms) > 0 {
		s += ": " + q.Pred.String()
	}
	if q.IsJoin() {
		s += " JOIN " + q.Table2
		if len(q.Pred2.Atoms) > 0 {
			s += ": " + q.Pred2.String()
		}
	}
	return s
}
