package pagefeedback

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestExportFeedbackToFileRoundTrip exercises the atomic file export and
// the matching import.
func TestExportFeedbackToFileRoundTrip(t *testing.T) {
	eng := buildTestDB(t, 8000)
	res, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 500",
		&RunOptions{MonitorAll: true, SampleFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	eng.ApplyFeedback(res)

	path := filepath.Join(t.TempDir(), "feedback.json")
	if err := eng.ExportFeedbackToFile(path); err != nil {
		t.Fatal(err)
	}

	eng2 := buildTestDB(t, 8000)
	n, err := eng2.ImportFeedbackFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("import loaded no entries")
	}
	if got, want := len(eng2.FeedbackCache().Entries()), len(eng.FeedbackCache().Entries()); got != want {
		t.Errorf("imported cache has %d entries, want %d", got, want)
	}
}

// TestAtomicWritePartialFailure drives the atomic writer with a write
// function that fails partway: the existing destination must be untouched
// and no temp file may be left behind.
func TestAtomicWritePartialFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "feedback.json")
	const original = `{"version":1,"entries":null,"histograms":null}`
	if err := os.WriteFile(path, []byte(original), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk full")
	err := writeFileAtomic(path, func(w io.Writer) error {
		// A partial write followed by a failure — the torn-export case.
		if _, err := io.WriteString(w, `{"version":1,"ent`); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("writeFileAtomic error = %v, want the writer's failure", err)
	}

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != original {
		t.Errorf("destination changed after failed export:\n%s", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		for _, e := range entries {
			t.Logf("left behind: %s", e.Name())
		}
		t.Errorf("%d files in dir after failed export, want 1", len(entries))
	}
}
