package pagefeedback

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"syscall"

	"pagefeedback/internal/core"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/tuple"
)

// Feedback persistence: the observations gathered in one session — the
// (expression, cardinality, DPC) cache and the self-tuning page-count
// histograms — can be exported as JSON and imported into a later session,
// the "learn about errors ... and correct execution plans" loop of §II-C
// made durable.

// feedbackDump is the serialized form.
type feedbackDump struct {
	Version    int                 `json:"version"`
	Entries    []feedbackEntryJSON `json:"entries"`
	Histograms []histogramDumpJSON `json:"histograms"`
	JoinCurves []joinCurveDumpJSON `json:"joinCurves,omitempty"`
}

type joinCurveDumpJSON struct {
	Table   string              `json:"table"`
	JoinCol string              `json:"joinCol"`
	Points  []core.JoinDPCPoint `json:"points"`
}

type feedbackEntryJSON struct {
	Table       string     `json:"table"`
	Atoms       []atomJSON `json:"atoms"`
	Cardinality int64      `json:"cardinality"`
	DPC         int64      `json:"dpc"`
	Mechanism   string     `json:"mechanism"`
	Exact       bool       `json:"exact"`
}

type atomJSON struct {
	Col  string    `json:"col"`
	Op   string    `json:"op"`
	Val  valJSON   `json:"val"`
	Val2 *valJSON  `json:"val2,omitempty"`
	List []valJSON `json:"list,omitempty"`
}

type valJSON struct {
	Kind string `json:"kind"` // "int", "str", "date"
	Int  int64  `json:"int,omitempty"`
	Str  string `json:"str,omitempty"`
}

type histogramDumpJSON struct {
	Table        string                `json:"table"`
	Column       string                `json:"column"`
	Observations []core.DPCObservation `json:"observations"`
}

func valueToJSON(v tuple.Value) valJSON {
	switch v.Kind {
	case tuple.KindString:
		return valJSON{Kind: "str", Str: v.Str}
	case tuple.KindDate:
		return valJSON{Kind: "date", Int: v.Int}
	default:
		return valJSON{Kind: "int", Int: v.Int}
	}
}

func valueFromJSON(v valJSON) (tuple.Value, error) {
	switch v.Kind {
	case "str":
		return tuple.Str(v.Str), nil
	case "date":
		return tuple.Date(v.Int), nil
	case "int":
		return tuple.Int64(v.Int), nil
	default:
		return tuple.Value{}, fmt.Errorf("pagefeedback: unknown value kind %q", v.Kind)
	}
}

func opFromString(s string) (expr.CmpOp, error) {
	for _, op := range []expr.CmpOp{expr.Eq, expr.Ne, expr.Lt, expr.Le, expr.Gt, expr.Ge, expr.Between, expr.In} {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("pagefeedback: unknown operator %q", s)
}

// trackedEntry pairs a cache entry with its reconstructed predicate; the
// engine keeps them so ExportFeedback can serialize the atoms (the cache
// itself stores only rendered text).
type trackedEntry struct {
	table string
	pred  expr.Conjunction
	entry core.FeedbackEntry
}

// ExportFeedback writes the current feedback state as JSON.
func (e *Engine) ExportFeedback(w io.Writer) error {
	dump := feedbackDump{Version: 1}
	e.fmu.Lock()
	defer e.fmu.Unlock()
	trackKeys := make([]string, 0, len(e.tracked))
	for k := range e.tracked {
		trackKeys = append(trackKeys, k)
	}
	sort.Strings(trackKeys)
	for _, k := range trackKeys {
		te := e.tracked[k]
		ej := feedbackEntryJSON{
			Table:       te.table,
			Cardinality: te.entry.Cardinality,
			DPC:         te.entry.DPC,
			Mechanism:   te.entry.Mechanism,
			Exact:       te.entry.Exact,
		}
		for _, a := range te.pred.Atoms {
			aj := atomJSON{Col: a.Col, Op: a.Op.String(), Val: valueToJSON(a.Val)}
			if a.Op == expr.Between {
				v2 := valueToJSON(a.Val2)
				aj.Val2 = &v2
			}
			for _, lv := range a.List {
				aj.List = append(aj.List, valueToJSON(lv))
			}
			ej.Atoms = append(ej.Atoms, aj)
		}
		dump.Entries = append(dump.Entries, ej)
	}
	// Emit histograms and join curves in sorted key order so exports are
	// deterministic: two engines with identical learned state produce
	// byte-identical dumps, and successive dumps diff cleanly.
	hists := e.histDumpSources()
	for _, key := range sortedKeys(hists) {
		dump.Histograms = append(dump.Histograms, histogramDumpJSON{
			Table: key[0], Column: key[1], Observations: hists[key],
		})
	}
	for _, key := range sortedKeys(e.joinCols) {
		if c, ok := e.opt.JoinDPCCurve(key[0], key[1]); ok {
			dump.JoinCurves = append(dump.JoinCurves, joinCurveDumpJSON{
				Table: key[0], JoinCol: key[1], Points: c.Points(),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// ExportFeedbackToFile atomically writes the feedback dump to path: the
// JSON is written to a temporary file in the same directory, synced, and
// renamed over the destination. A crash or write fault mid-export leaves
// any existing dump at path untouched — a half-written feedback file read
// back next session would silently poison the optimizer.
func (e *Engine) ExportFeedbackToFile(path string) error {
	return writeFileAtomic(path, e.ExportFeedback)
}

// ImportFeedbackFromFile loads a feedback dump written by
// ExportFeedbackToFile (or any ExportFeedback output).
func (e *Engine) ImportFeedbackFromFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return e.ImportFeedback(f)
}

// writeFileAtomic streams write's output into a temp file next to path and
// renames it into place only after a successful write and sync. On any
// failure the temp file is removed and path is left as it was. After the
// rename the parent directory is synced too: the rename itself lives in the
// directory, and without the directory fsync a crash can durably keep the
// old file, the new file, or — on some filesystems — neither name.
func writeFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename inside it is durable. Platforms
// whose directory handles reject Sync (it is optional in POSIX) degrade to
// the pre-sync guarantee rather than failing the export.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("pagefeedback: sync %s: %w", dir, err)
	}
	return nil
}

// sortedKeys returns m's [table, column] keys in lexicographic order.
func sortedKeys[V any](m map[[2]string]V) [][2]string {
	keys := make([][2]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// histDumpSources snapshots the learned histograms by walking the columns
// the engine has recorded observations for. Callers hold e.fmu.
func (e *Engine) histDumpSources() map[[2]string][]core.DPCObservation {
	out := make(map[[2]string][]core.DPCObservation)
	for key := range e.histCols {
		if h, ok := e.opt.DPCHistogram(key[0], key[1]); ok {
			out[key] = h.Observations()
		}
	}
	return out
}

// ImportFeedback loads a JSON dump produced by ExportFeedback, storing the
// entries in the cache, injecting their page counts, and replaying the
// histogram observations. It returns the number of entries loaded.
//
// The import is two-phase: the whole dump is decoded and validated before
// anything touches the engine, so a malformed dump — unknown operator or
// value kind, negative counts, duplicate keys, a version from the future —
// is rejected wholesale and never half-poisons the cache or the optimizer.
func (e *Engine) ImportFeedback(r io.Reader) (int, error) {
	var dump feedbackDump
	if err := json.NewDecoder(r).Decode(&dump); err != nil {
		return 0, err
	}
	if dump.Version != 1 {
		return 0, fmt.Errorf("pagefeedback: unsupported feedback dump version %d", dump.Version)
	}
	// Phase 1: validate and build, touching no engine state.
	type pendingEntry struct {
		table string
		pred  expr.Conjunction
		entry core.FeedbackEntry
	}
	pending := make([]pendingEntry, 0, len(dump.Entries))
	seen := make(map[string]bool, len(dump.Entries))
	for i, ej := range dump.Entries {
		if ej.Table == "" {
			return 0, fmt.Errorf("pagefeedback: entry %d has no table", i)
		}
		if len(ej.Atoms) == 0 {
			return 0, fmt.Errorf("pagefeedback: entry %d (%s) has no predicate", i, ej.Table)
		}
		if ej.DPC < 0 || ej.Cardinality < 0 {
			return 0, fmt.Errorf("pagefeedback: entry %d (%s) has negative counts (dpc=%d, cardinality=%d)",
				i, ej.Table, ej.DPC, ej.Cardinality)
		}
		var pred expr.Conjunction
		for _, aj := range ej.Atoms {
			op, err := opFromString(aj.Op)
			if err != nil {
				return 0, err
			}
			v, err := valueFromJSON(aj.Val)
			if err != nil {
				return 0, err
			}
			a := expr.Atom{Col: aj.Col, Op: op, Val: v}
			if op == expr.Between {
				if aj.Val2 == nil {
					return 0, fmt.Errorf("pagefeedback: entry %d (%s): BETWEEN without an upper bound", i, ej.Table)
				}
			}
			if aj.Val2 != nil {
				v2, err := valueFromJSON(*aj.Val2)
				if err != nil {
					return 0, err
				}
				a.Val2 = v2
			}
			for _, lv := range aj.List {
				v, err := valueFromJSON(lv)
				if err != nil {
					return 0, err
				}
				a.List = append(a.List, v)
			}
			pred.Atoms = append(pred.Atoms, a)
		}
		key := core.Key(ej.Table, pred)
		if seen[key] {
			return 0, fmt.Errorf("pagefeedback: duplicate entry for %s", key)
		}
		seen[key] = true
		pending = append(pending, pendingEntry{
			table: ej.Table, pred: pred,
			entry: core.FeedbackEntry{
				Cardinality: ej.Cardinality, DPC: ej.DPC,
				Mechanism: ej.Mechanism, Exact: ej.Exact,
			},
		})
	}
	for _, hd := range dump.Histograms {
		if hd.Table == "" || hd.Column == "" {
			return 0, fmt.Errorf("pagefeedback: histogram dump without table/column")
		}
		for _, o := range hd.Observations {
			if o.Rows < 0 || o.DPC < 0 || o.Hi < o.Lo {
				return 0, fmt.Errorf("pagefeedback: invalid observation for %s.%s: %+v", hd.Table, hd.Column, o)
			}
		}
	}
	for _, cd := range dump.JoinCurves {
		if cd.Table == "" || cd.JoinCol == "" {
			return 0, fmt.Errorf("pagefeedback: join curve dump without table/column")
		}
		for _, p := range cd.Points {
			if p.Rows < 0 || p.DPC < 0 {
				return 0, fmt.Errorf("pagefeedback: invalid join point for %s.%s: %+v", cd.Table, cd.JoinCol, p)
			}
		}
	}
	// Phase 2: apply. Nothing below can fail.
	for _, p := range pending {
		e.cache.Store(p.table, p.pred, p.entry)
		e.opt.InjectDPC(p.table, p.pred, float64(p.entry.DPC))
		e.track(p.table, p.pred, p.entry)
	}
	for _, hd := range dump.Histograms {
		for _, o := range hd.Observations {
			e.opt.RecordDPCObservation(hd.Table, hd.Column, o.Lo, o.Hi, o.Rows, o.DPC)
		}
		e.fmu.Lock()
		e.histCols[[2]string{hd.Table, hd.Column}] = true
		e.fmu.Unlock()
	}
	for _, cd := range dump.JoinCurves {
		for _, p := range cd.Points {
			e.opt.RecordJoinDPCObservation(cd.Table, cd.JoinCol, p.Rows, p.DPC)
		}
		e.fmu.Lock()
		e.joinCols[[2]string{cd.Table, cd.JoinCol}] = true
		e.fmu.Unlock()
	}
	return len(pending), nil
}
