package pagefeedback

import (
	"fmt"
	"strings"

	"pagefeedback/internal/exec"
	"pagefeedback/internal/plan"
)

// Explain optimizes the query and renders the chosen plan with estimates,
// without executing it. The second return value lists, for each predicate
// expression the optimizer costed with a distinct page count, where that
// estimate came from (analytical model, feedback injection, or the learned
// histogram) — the provenance a DBA checks before trusting a plan. For the
// runtime complement — the same tree annotated with actual rows, measured
// DPCs, and q-errors after really running the query — see ExplainAnalyze.
func (e *Engine) Explain(src string) (string, error) {
	return e.ExplainWithOptions(src, nil)
}

// ExplainWithOptions is Explain plus option-dependent detail: when opts
// request intra-query parallelism it appends the effective degree and the
// physical operator tree the executor would run, which shows exactly which
// scans partition (ParallelScan) and which stay serial because their subtree
// is order-sensitive; unless opts force the row path it lists which physical
// operators would run batch-native (everything else falls back to rows
// through the adapter). Nothing is executed.
func (e *Engine) ExplainWithOptions(src string, opts *RunOptions) (string, error) {
	q, err := e.ParseQuery(src)
	if err != nil {
		return "", err
	}
	node, err := e.PlanQuery(q)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(plan.Format(node))
	if deg := opts.parallelDegree(); deg > 1 {
		ctx := exec.NewContext(e.pool)
		ctx.Parallelism = deg
		if ex, err := exec.Build(ctx, node, nil); err == nil {
			fmt.Fprintf(&b, "parallelism: %d\n", deg)
			writeOpTree(&b, ex.StatsSnapshot(), 1)
		}
	}
	if opts.vectorized() {
		ctx := exec.NewContext(e.pool)
		ctx.Parallelism = opts.parallelDegree()
		ctx.Vectorized = true
		if ex, err := exec.Build(ctx, node, nil); err == nil {
			if labels := ex.VectorizedLabels(); len(labels) > 0 {
				fmt.Fprintf(&b, "vectorized: %s\n", strings.Join(labels, ", "))
			}
		}
	}

	// DPC provenance for the query's predicates.
	appendProvenance := func(table string, pred Conjunction) {
		if len(pred.Atoms) == 0 {
			return
		}
		est, err := e.opt.EstimateDPC(table, pred)
		if err != nil {
			return
		}
		source := "analytical (Yao)"
		if e.opt.HasInjectedDPC(table, pred) {
			source = "execution feedback"
		} else if cols := pred.Columns(); len(cols) == 1 {
			if h, ok := e.opt.DPCHistogram(table, cols[0]); ok && h.Len() > 0 {
				source = "self-tuning histogram"
			}
		}
		fmt.Fprintf(&b, "DPC(%s, %s) ~ %.0f pages  [%s]\n", table, pred, est, source)
	}
	appendProvenance(q.Table, q.Pred)
	if q.IsJoin() {
		appendProvenance(q.Table2, q.Pred2)
	}
	return b.String(), nil
}

// writeOpTree renders the physical operator labels as an indented tree.
func writeOpTree(b *strings.Builder, op exec.OperatorStats, depth int) {
	fmt.Fprintf(b, "%s%s\n", strings.Repeat("  ", depth), op.Label)
	for _, c := range op.Children {
		writeOpTree(b, c, depth+1)
	}
}
