package pagefeedback

import (
	"fmt"
	"strings"

	"pagefeedback/internal/plan"
)

// Explain optimizes the query and renders the chosen plan with estimates,
// without executing it. The second return value lists, for each predicate
// expression the optimizer costed with a distinct page count, where that
// estimate came from (analytical model, feedback injection, or the learned
// histogram) — the provenance a DBA checks before trusting a plan.
func (e *Engine) Explain(src string) (string, error) {
	q, err := e.ParseQuery(src)
	if err != nil {
		return "", err
	}
	node, err := e.PlanQuery(q)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(plan.Format(node))

	// DPC provenance for the query's predicates.
	appendProvenance := func(table string, pred Conjunction) {
		if len(pred.Atoms) == 0 {
			return
		}
		est, err := e.opt.EstimateDPC(table, pred)
		if err != nil {
			return
		}
		source := "analytical (Yao)"
		if e.opt.HasInjectedDPC(table, pred) {
			source = "execution feedback"
		} else if cols := pred.Columns(); len(cols) == 1 {
			if h, ok := e.opt.DPCHistogram(table, cols[0]); ok && h.Len() > 0 {
				source = "self-tuning histogram"
			}
		}
		fmt.Fprintf(&b, "DPC(%s, %s) ~ %.0f pages  [%s]\n", table, pred, est, source)
	}
	appendProvenance(q.Table, q.Pred)
	if q.IsJoin() {
		appendProvenance(q.Table2, q.Pred2)
	}
	return b.String(), nil
}
