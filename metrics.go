package pagefeedback

import (
	"errors"
	"io"

	"pagefeedback/internal/metrics"
)

// engineMetrics is the engine-wide instrumentation: counters for query and
// error volume, histograms for latency and resource distributions. All
// fields are registered against one Registry so MetricsSnapshot exports
// them in a stable order. Everything here is write-hot-path safe: counters
// and histograms are a handful of atomic adds each.
type engineMetrics struct {
	reg *metrics.Registry

	queries     *metrics.Counter
	errors      map[ErrorKind]*metrics.Counter
	rows        *metrics.Counter
	rowsLoaded  *metrics.Counter
	slowQueries *metrics.Counter

	// Occupancy gauges are refreshed from the admission gate at snapshot
	// time (see Engine.MetricsSnapshot) rather than on every admission
	// event, keeping the admit/release paths free of extra stores.
	queriesActive   *metrics.Gauge
	admissionQueued *metrics.Gauge
	admissionPeak   *metrics.Gauge

	planCacheHits   *metrics.Counter
	planCacheMisses *metrics.Counter

	shedMonitors        *metrics.Counter
	quarantinedMonitors *metrics.Counter

	physicalReads *metrics.Counter
	logicalReads  *metrics.Counter
	prefetched    *metrics.Counter
	readRetries   *metrics.Counter
	spansDropped  *metrics.Counter

	wallMicros      *metrics.Histogram
	simulatedMicros *metrics.Histogram
	queueWaitMicros *metrics.Histogram
	memPeakBytes    *metrics.Histogram
	poolFrameWait   *metrics.Histogram
}

// errorKinds enumerates every ErrorKind for counter pre-registration, so
// the exported metric set is identical on every engine regardless of which
// failures have occurred.
var errorKinds = []ErrorKind{
	ErrKindCancelled, ErrKindTimeout, ErrKindPanic, ErrKindStorage,
	ErrKindOverload, ErrKindMemory, ErrKindExec,
}

func newEngineMetrics() *engineMetrics {
	reg := metrics.NewRegistry()
	m := &engineMetrics{
		reg:         reg,
		queries:     reg.NewCounter("pf_queries_total", "Queries executed (successes and failures)."),
		errors:      make(map[ErrorKind]*metrics.Counter, len(errorKinds)),
		rows:        reg.NewCounter("pf_rows_returned_total", "Rows returned by successful queries."),
		rowsLoaded:  reg.NewCounter("pf_rows_loaded_total", "Rows bulk-loaded into tables."),
		slowQueries: reg.NewCounter("pf_slow_queries_total", "Queries captured by the slow-query log."),

		queriesActive:   reg.NewGauge("pf_queries_active", "Queries currently admitted and executing."),
		admissionQueued: reg.NewGauge("pf_admission_queued", "Queries currently waiting for admission."),
		admissionPeak:   reg.NewGauge("pf_admission_peak_queued", "Deepest the admission queue has been."),

		planCacheHits:   reg.NewCounter("pf_plan_cache_hits_total", "Plans instantiated from the plan cache."),
		planCacheMisses: reg.NewCounter("pf_plan_cache_misses_total", "Plans optimized anew."),

		shedMonitors:        reg.NewCounter("pf_shed_monitors_total", "DPC monitors degraded by load-shedding."),
		quarantinedMonitors: reg.NewCounter("pf_quarantined_monitors_total", "DPC monitors quarantined by faults."),

		physicalReads: reg.NewCounter("pf_physical_reads_total", "Pages read from simulated disk."),
		logicalReads:  reg.NewCounter("pf_logical_reads_total", "Page requests served by the buffer pool."),
		prefetched:    reg.NewCounter("pf_prefetched_pages_total", "Pages read ahead of demand."),
		readRetries:   reg.NewCounter("pf_read_retries_total", "Transient storage faults absorbed by retry."),
		spansDropped:  reg.NewCounter("pf_trace_spans_dropped_total", "Trace spans dropped by full buffers."),

		wallMicros:      reg.NewHistogram("pf_query_wall_microseconds", "Wall-clock query latency."),
		simulatedMicros: reg.NewHistogram("pf_query_simulated_microseconds", "Simulated (I/O + CPU) query time."),
		queueWaitMicros: reg.NewHistogram("pf_admission_wait_microseconds", "Admission queue wait per admitted query."),
		memPeakBytes:    reg.NewHistogram("pf_query_mem_peak_bytes", "Per-query peak of tracked operator memory."),
		poolFrameWait:   reg.NewHistogram("pf_pool_frame_wait_microseconds", "Buffer-pool frame waits on exhausted shards."),
	}
	for _, k := range errorKinds {
		m.errors[k] = reg.NewCounter("pf_query_errors_"+string(k)+"_total",
			"Queries failed with kind "+string(k)+".")
	}
	return m
}

// noteQuery records the outcome of one ExecuteContext call. It runs after
// the panic boundary, so err is already classified (or nil with res set).
func (m *engineMetrics) noteQuery(res *Result, err error) {
	m.queries.Inc()
	if err != nil {
		kind := ErrKindExec
		var qe *QueryError
		if errors.As(err, &qe) {
			kind = qe.Kind
		}
		if c, ok := m.errors[kind]; ok {
			c.Inc()
		} else {
			m.errors[ErrKindExec].Inc()
		}
		return
	}
	if res == nil {
		return
	}
	rt := &res.Stats.Runtime
	m.rows.Add(int64(len(res.Rows)))
	m.wallMicros.Observe(res.WallTime.Microseconds())
	m.simulatedMicros.Observe(res.SimulatedTime.Microseconds())
	if rt.QueueWait > 0 {
		m.queueWaitMicros.Observe(rt.QueueWait.Microseconds())
	}
	if rt.MemPeakBytes > 0 {
		m.memPeakBytes.Observe(rt.MemPeakBytes)
	}
	m.shedMonitors.Add(int64(rt.ShedMonitors))
	m.quarantinedMonitors.Add(int64(rt.QuarantinedMonitors))
	m.physicalReads.Add(rt.PhysicalReads)
	m.logicalReads.Add(rt.LogicalReads)
	m.prefetched.Add(rt.PrefetchedPages)
	m.readRetries.Add(rt.ReadRetries)
	if res.Trace != nil {
		m.spansDropped.Add(res.Trace.Dropped)
	}
}

// MetricsSnapshot returns a stable-ordered snapshot of every engine metric:
// query and error counters, latency and resource histograms, plan-cache and
// monitor-degradation counts, and the admission occupancy gauges (refreshed
// here, at read time). Safe to call concurrently with queries.
func (e *Engine) MetricsSnapshot() metrics.Snapshot {
	active, queued, peak := e.gate.occupancy()
	e.met.queriesActive.Set(int64(active))
	e.met.admissionQueued.Set(int64(queued))
	e.met.admissionPeak.Set(int64(peak))
	return e.met.reg.Snapshot()
}

// WriteMetricsPrometheus writes the current metrics in the Prometheus text
// exposition format.
func (e *Engine) WriteMetricsPrometheus(w io.Writer) error {
	s := e.MetricsSnapshot()
	return s.WritePrometheus(w)
}
