package pagefeedback

import (
	"pagefeedback/internal/catalog"
	"pagefeedback/internal/exec"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/tuple"
)

// Re-exported types so library users never import internal packages.
type (
	// Value is one typed column value.
	Value = tuple.Value
	// Row is one tuple.
	Row = tuple.Row
	// Schema describes a table's columns.
	Schema = tuple.Schema
	// Column is one schema column.
	Column = tuple.Column
	// Kind is a column type.
	Kind = tuple.Kind
	// Conjunction is an AND of atomic predicates.
	Conjunction = expr.Conjunction
	// Atom is one atomic predicate.
	Atom = expr.Atom
	// CmpOp is a comparison operator.
	CmpOp = expr.CmpOp
	// MonitorConfig configures DPC monitoring for one execution.
	MonitorConfig = exec.MonitorConfig
	// DPCRequest asks for one distinct page count.
	DPCRequest = exec.DPCRequest
	// DPCResult is one obtained distinct page count.
	DPCResult = exec.DPCResult
	// IOModel holds simulated device timings.
	IOModel = storage.IOModel
	// Table is one base table.
	Table = catalog.Table
	// Index is one secondary index.
	Index = catalog.Index
)

// Column kinds.
const (
	KindInt    = tuple.KindInt
	KindString = tuple.KindString
	KindDate   = tuple.KindDate
)

// Comparison operators.
const (
	Eq      = expr.Eq
	Ne      = expr.Ne
	Lt      = expr.Lt
	Le      = expr.Le
	Gt      = expr.Gt
	Ge      = expr.Ge
	Between = expr.Between
	In      = expr.In
)

// Monitoring mechanisms (the values of DPCResult.Mechanism).
const (
	MechExactScan     = exec.MechExactScan
	MechDPSample      = exec.MechDPSample
	MechLinearCount   = exec.MechLinearCount
	MechBitVector     = exec.MechBitVector
	MechINLFetch      = exec.MechINLFetch
	MechUnsatisfiable = exec.MechUnsatisfiable
)

// Value constructors.
var (
	// Int64 builds an integer value.
	Int64 = tuple.Int64
	// Str builds a string value.
	Str = tuple.Str
	// Date builds a date from days since the Unix epoch.
	Date = tuple.Date
	// DateFromTime builds a date from a time.Time.
	DateFromTime = tuple.DateFromTime
	// NewSchema builds a schema.
	NewSchema = tuple.NewSchema
	// And builds a conjunction.
	And = expr.And
	// NewAtom builds col <op> value.
	NewAtom = expr.NewAtom
	// NewBetween builds lo <= col <= hi.
	NewBetween = expr.NewBetween
	// NewIn builds col IN (...).
	NewIn = expr.NewIn
	// MarshalStats renders execution statistics as XML.
	MarshalStats = exec.MarshalStats
)

// CreateHeapTable creates an empty heap table.
func (e *Engine) CreateHeapTable(name string, schema *Schema) (*Table, error) {
	return e.cat.CreateHeapTable(name, schema)
}

// CreateClusteredTable creates an empty clustered table.
func (e *Engine) CreateClusteredTable(name string, schema *Schema, clusterCols []string) (*Table, error) {
	return e.cat.CreateClusteredTable(name, schema, clusterCols)
}

// CreateIndex builds a secondary index over cols. A new index changes the
// available access paths, so cached plans for the table are invalidated.
func (e *Engine) CreateIndex(name, table string, cols ...string) (*Index, error) {
	tab, ok := e.cat.Table(table)
	if !ok {
		return nil, errNoTable(table)
	}
	ix, err := e.cat.CreateIndex(name, tab, cols)
	if err == nil {
		e.bumpPlanEpoch(table)
	}
	return ix, err
}

// Load bulk-loads rows into a table (clustered tables require rows sorted
// by the clustering key). Any previously learned feedback for the table is
// invalidated: its page counts were observed against the old data.
func (e *Engine) Load(table string, rows []Row) error {
	tab, ok := e.cat.Table(table)
	if !ok {
		return errNoTable(table)
	}
	if _, err := tab.BulkLoad(rows); err != nil {
		return err
	}
	e.met.rowsLoaded.Add(int64(len(rows)))
	e.InvalidateFeedback(table)
	return nil
}

type errNoTable string

func (e errNoTable) Error() string { return "pagefeedback: no table " + string(e) }
