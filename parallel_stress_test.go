package pagefeedback

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"pagefeedback/internal/exec"
)

// raiseProcs lifts GOMAXPROCS to at least n for the test's duration so the
// engine's degree clamp does not silently serialize parallel runs on small CI
// machines; correctness of the parallel mode does not depend on real cores.
func raiseProcs(t *testing.T, n int) {
	t.Helper()
	if runtime.GOMAXPROCS(0) >= n {
		return
	}
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestParallelStressMixedDegreesOneEngine is the -race workhorse for the
// intra-query parallel mode: many goroutines run serial and parallel queries
// (scans and hash joins, monitored and not) against ONE engine at once, so
// partitioned workers, monitor shard merges, prefetch I/O, and plain serial
// executions all interleave on the shared buffer pool.
func TestParallelStressMixedDegreesOneEngine(t *testing.T) {
	raiseProcs(t, 4)
	eng := joinTestEnv(t, 8000)
	// Warm the cache once; WarmCache below keeps each query from resetting
	// the shared pool under its neighbors.
	if _, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 8000", nil); err != nil {
		t.Fatal(err)
	}

	queries := []struct {
		sql  string
		want int64 // -1: don't check the count
	}{
		{"SELECT COUNT(padding) FROM t WHERE c2 < 6000", 6000},
		{"SELECT COUNT(padding) FROM t WHERE c5 < 4000", 4000},
		{"SELECT COUNT(padding) FROM t, u WHERE u.c1 < 400 AND u.c2 = t.c2", -1},
	}
	degrees := []int{0, 2, 4}

	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				q := queries[(w+i)%len(queries)]
				opts := &RunOptions{
					WarmCache:   true,
					Parallelism: degrees[(w+i)%len(degrees)],
					MonitorAll:  (w+i)%2 == 0,
				}
				res, err := eng.Query(q.sql, opts)
				if err != nil {
					errs <- fmt.Errorf("worker %d %q p=%d: %v", w, q.sql, opts.Parallelism, err)
					return
				}
				if q.want >= 0 {
					if got := res.Rows[0][0].Int; got != q.want {
						errs <- fmt.Errorf("worker %d %q p=%d: count = %d, want %d",
							w, q.sql, opts.Parallelism, got, q.want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	assertNoPins(t, eng)
}

// TestParallelFeedbackMatchesSerialEngineLevel runs the same monitored
// queries serially and at parallelism 4 through the full engine stack and
// requires identical DPC feedback — the end-to-end version of the exec-level
// partition-invariance property tests.
func TestParallelFeedbackMatchesSerialEngineLevel(t *testing.T) {
	raiseProcs(t, 4)
	eng := joinTestEnv(t, 8000)
	for _, sql := range []string{
		"SELECT COUNT(padding) FROM t WHERE c5 < 4000",
		"SELECT COUNT(padding) FROM t, u WHERE u.c1 < 400 AND u.c2 = t.c2",
	} {
		run := func(deg int) []exec.DPCResult {
			res, err := eng.Query(sql, &RunOptions{
				MonitorAll: true, SampleFraction: 0.25, WarmCache: true, Parallelism: deg,
			})
			if err != nil {
				t.Fatalf("%q p=%d: %v", sql, deg, err)
			}
			return res.DPC
		}
		ser, par := run(0), run(4)
		if !reflect.DeepEqual(ser, par) {
			t.Errorf("%q: DPC feedback differs:\n  serial   %+v\n  parallel %+v", sql, ser, par)
		}
	}
	assertNoPins(t, eng)
}
