package pagefeedback_test

// Plan-cache and prepared-statement benchmarks: what does skipping the
// lexer, parser, and optimizer buy on the per-query hot path?
//
//	BenchmarkPreparedThroughput/literal-uncached   parse + optimize every call
//	BenchmarkPreparedThroughput/literal-cached     parse every call, plan from cache
//	BenchmarkPreparedThroughput/prepared           bind-only, plan from cache
//
// All three run the same selective seek workload over a warm pool from all
// procs. The headline numbers append to BENCH_throughput.json and the
// cached-vs-uncached comparison to BENCH_plancache.json.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"pagefeedback"
)

// The workload is a realistic OLTP point-range lookup: a clustered-key
// range plus residual atoms (the optimizer must cost every atom against
// every index; the executor folds them into one compiled predicate). The
// range start rotates across iterations so every execution binds different
// constants — all in one selectivity bucket, so the cache must rebind the
// template, not replay it.
const (
	preparedBenchRows = 64000
	preparedLiteral   = "SELECT COUNT(w) FROM tb WHERE k BETWEEN %d AND %d AND v >= 0 AND w >= 0 AND w <= 100"
	preparedTemplate  = "SELECT COUNT(w) FROM tb WHERE k BETWEEN ? AND ? AND v >= 0 AND w >= 0 AND w <= 100"
)

func preparedBenchLo(i int) int64 { return int64(i*997) % 32000 }

func runPreparedVariant(b *testing.B, eng *pagefeedback.Engine, prepared bool) float64 {
	b.Helper()
	var stmt *pagefeedback.Stmt
	if prepared {
		var err error
		stmt, err = eng.Prepare(preparedTemplate)
		if err != nil {
			b.Fatal(err)
		}
	}
	var ops atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		opts := &pagefeedback.RunOptions{WarmCache: true}
		for pb.Next() {
			lo := preparedBenchLo(i)
			i++
			var err error
			if prepared {
				_, err = stmt.Query([]pagefeedback.Value{
					pagefeedback.Int64(lo), pagefeedback.Int64(lo + 3),
				}, opts)
			} else {
				sql := fmt.Sprintf(preparedLiteral, lo, lo+3)
				_, err = eng.Query(sql, opts)
			}
			if err != nil {
				b.Fatal(err)
			}
			ops.Add(1)
		}
	})
	b.StopTimer()
	opsPerSec := float64(ops.Load()) / b.Elapsed().Seconds()
	b.ReportMetric(opsPerSec, "queries/sec")
	return opsPerSec
}

func BenchmarkPreparedThroughput(b *testing.B) {
	uncachedCfg := pagefeedback.DefaultConfig()
	uncachedCfg.PlanCacheSize = -1

	var uncached, cached, prepared float64
	b.Run("literal-uncached", func(b *testing.B) {
		uncached = runPreparedVariant(b, buildBenchEngineCfg(b, preparedBenchRows, uncachedCfg), false)
	})
	b.Run("literal-cached", func(b *testing.B) {
		cached = runPreparedVariant(b, buildBenchEngine(b, preparedBenchRows), false)
	})
	b.Run("prepared", func(b *testing.B) {
		eng := buildBenchEngine(b, preparedBenchRows)
		prepared = runPreparedVariant(b, eng, true)
		st := eng.PlanCacheStats()
		if total := st.Hits + st.Misses; total > 0 {
			b.ReportMetric(float64(st.Hits)/float64(total), "hit-rate")
		}
	})
	if uncached > 0 && prepared > 0 {
		b.Logf("prepared vs literal-uncached speedup: %.2fx", prepared/uncached)
		writeBenchJSON(b, "BENCH_throughput.json", "BenchmarkPreparedThroughput", map[string]any{
			"prepared_queries_per_sec":         prepared,
			"literal_cached_queries_per_sec":   cached,
			"literal_uncached_queries_per_sec": uncached,
			"speedup_vs_uncached":              prepared / uncached,
		})
	}
}

// BenchmarkPlanCache isolates the planning path itself — single-goroutine,
// identical tiny query — so ns/op is parse+optimize+execute vs
// parse+instantiate+execute. The delta is exactly what the cache removes.
func BenchmarkPlanCache(b *testing.B) {
	uncachedCfg := pagefeedback.DefaultConfig()
	uncachedCfg.PlanCacheSize = -1
	run := func(b *testing.B, eng *pagefeedback.Engine) float64 {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := preparedBenchLo(i)
			sql := fmt.Sprintf(preparedLiteral, lo, lo+3)
			if _, err := eng.Query(sql, &pagefeedback.RunOptions{WarmCache: true}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		return float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	}
	var nsUncached, nsCached, hitRate float64
	b.Run("uncached", func(b *testing.B) {
		nsUncached = run(b, buildBenchEngineCfg(b, preparedBenchRows, uncachedCfg))
	})
	b.Run("cached", func(b *testing.B) {
		eng := buildBenchEngine(b, preparedBenchRows)
		nsCached = run(b, eng)
		st := eng.PlanCacheStats()
		if total := st.Hits + st.Misses; total > 0 {
			hitRate = float64(st.Hits) / float64(total)
			b.ReportMetric(hitRate, "hit-rate")
		}
	})
	if nsUncached > 0 && nsCached > 0 {
		writeBenchJSON(b, "BENCH_plancache.json", "BenchmarkPlanCache", map[string]any{
			"ns_op_uncached": nsUncached,
			"ns_op_cached":   nsCached,
			"speedup":        nsUncached / nsCached,
			"hit_rate":       hitRate,
		})
	}
}
