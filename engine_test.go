package pagefeedback

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"pagefeedback/internal/plan"
)

// buildTestDB creates a clustered table t(c1, c2, c5, padding) where c2
// correlates with the clustering key and c5 does not, with indexes on both.
func buildTestDB(t *testing.T, n int) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PoolPages = 8192
	return buildTestDBCfg(t, n, cfg)
}

// buildTestDBCfg is buildTestDB with an explicit engine configuration (the
// plan-cache tests need cache-disabled engines over identical data).
func buildTestDBCfg(t *testing.T, n int, cfg Config) *Engine {
	t.Helper()
	eng := New(cfg)
	schema := NewSchema(
		Column{Name: "c1", Kind: KindInt},
		Column{Name: "c2", Kind: KindInt},
		Column{Name: "c5", Kind: KindInt},
		Column{Name: "padding", Kind: KindString},
	)
	if _, err := eng.CreateClusteredTable("t", schema, []string{"c1"}); err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(21)).Perm(n)
	pad := strings.Repeat("z", 60)
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Int64(int64(i)), Int64(int64(i)), Int64(int64(perm[i])), Str(pad)}
	}
	if err := eng.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"c2", "c5"} {
		if _, err := eng.CreateIndex("ix_"+c, "t", c); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestQueryEndToEnd(t *testing.T) {
	eng := buildTestDB(t, 20000)
	res, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 2000", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 2000 {
		t.Errorf("count = %d", res.Rows[0][0].Int)
	}
	if res.SimulatedTime <= 0 {
		t.Error("no simulated time recorded")
	}
	if res.Stats.Runtime.PhysicalReads == 0 {
		t.Error("no physical reads on a cold cache")
	}
}

func TestMonitorAllProducesEstimatedVsActual(t *testing.T) {
	eng := buildTestDB(t, 20000)
	res, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 200",
		&RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DPC) == 0 {
		t.Fatal("no DPC results")
	}
	r := res.DPC[0]
	if r.Mechanism == MechUnsatisfiable {
		t.Fatalf("request unsatisfiable: %s", r.Reason)
	}
	// The analytical estimate should vastly exceed the observed count on
	// the correlated column — the diagnostic signal of the paper.
	x := res.Stats.DPC[0]
	if x.Estimated <= 2*x.Actual {
		t.Errorf("estimated %d vs actual %d: expected a big overestimate", x.Estimated, x.Actual)
	}
}

func TestFeedbackFlipsPlanAndSpeedsUp(t *testing.T) {
	eng := buildTestDB(t, 20000)
	const q = "SELECT COUNT(padding) FROM t WHERE c2 < 200"

	// Inject exact cardinality first (the paper isolates DPC effects).
	pq, err := eng.ParseQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	eng.Optimizer().InjectCardinality("t", pq.Pred, 200)

	res1, err := eng.Query(q, &RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	agg1 := res1.Plan.(*plan.Agg)
	if _, isScan := agg1.Input.(*plan.Scan); !isScan {
		t.Fatalf("pre-feedback plan = %s, want Scan", agg1.Input.Label())
	}

	eng.ApplyFeedback(res1)
	res2, err := eng.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg2 := res2.Plan.(*plan.Agg)
	if _, isSeek := agg2.Input.(*plan.Seek); !isSeek {
		t.Fatalf("post-feedback plan = %s, want Seek", agg2.Input.Label())
	}
	if res2.Rows[0][0].Int != 200 {
		t.Errorf("post-feedback count = %d", res2.Rows[0][0].Int)
	}
	// SpeedUp = (T - T')/T must be clearly positive.
	speedup := float64(res1.SimulatedTime-res2.SimulatedTime) / float64(res1.SimulatedTime)
	if speedup < 0.3 {
		t.Errorf("speedup = %.2f (T=%v, T'=%v), want > 0.3",
			speedup, res1.SimulatedTime, res2.SimulatedTime)
	}
}

func TestUncorrelatedColumnNoRegression(t *testing.T) {
	eng := buildTestDB(t, 20000)
	const q = "SELECT COUNT(padding) FROM t WHERE c5 < 1000" // 5%, uncorrelated
	res1, err := eng.Query(q, &RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.ApplyFeedback(res1)
	res2, err := eng.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Feedback confirms the scan choice: same plan family, no slowdown
	// beyond noise.
	if res2.Rows[0][0].Int != 1000 {
		t.Errorf("count = %d", res2.Rows[0][0].Int)
	}
	if res2.SimulatedTime > res1.SimulatedTime*11/10 {
		t.Errorf("regression after feedback: %v -> %v", res1.SimulatedTime, res2.SimulatedTime)
	}
}

func TestFeedbackCacheReuse(t *testing.T) {
	eng := buildTestDB(t, 20000)
	res, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 200",
		&RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.ApplyFeedback(res)
	if eng.FeedbackCache().Len() == 0 {
		t.Fatal("cache empty after ApplyFeedback")
	}
	// A fresh optimizer state (simulating a new session) can re-inject
	// from the cache.
	eng.Optimizer().ClearInjections()
	pq, _ := eng.ParseQuery("SELECT COUNT(padding) FROM t WHERE c2 < 200")
	if n := eng.InjectFromCache(pq); n == 0 {
		t.Fatal("InjectFromCache found nothing")
	}
	node, err := eng.PlanQuery(pq)
	if err != nil {
		t.Fatal(err)
	}
	if _, isSeek := node.(*plan.Agg).Input.(*plan.Seek); !isSeek {
		t.Error("cached feedback did not influence the plan")
	}
}

func TestStatisticsXMLDocument(t *testing.T) {
	eng := buildTestDB(t, 5000)
	res, err := eng.Query("SELECT COUNT(padding) FROM t WHERE c2 < 100",
		&RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	xmlStr, err := MarshalStats(res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ExecutionStats", "DistinctPageCounts", "mechanism", "estimated", "actual", "Runtime"} {
		if !strings.Contains(xmlStr, want) {
			t.Errorf("XML missing %q", want)
		}
	}
}

func TestWarmVsColdCache(t *testing.T) {
	eng := buildTestDB(t, 20000)
	const q = "SELECT COUNT(padding) FROM t WHERE c2 < 500"
	cold, err := eng.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Query(q, &RunOptions{WarmCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Runtime.PhysicalReads >= cold.Stats.Runtime.PhysicalReads {
		t.Errorf("warm run read %d pages, cold %d",
			warm.Stats.Runtime.PhysicalReads, cold.Stats.Runtime.PhysicalReads)
	}
}

func TestJoinQueryEndToEnd(t *testing.T) {
	eng := buildTestDB(t, 10000)
	// Second table: ids 0,2,4,... joined on c1.
	schema := NewSchema(
		Column{Name: "c1", Kind: KindInt},
		Column{Name: "v", Kind: KindInt},
	)
	if _, err := eng.CreateClusteredTable("s", schema, []string{"c1"}); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 2000)
	for i := range rows {
		rows[i] = Row{Int64(int64(i * 2)), Int64(int64(i))}
	}
	if err := eng.Load("s", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CreateIndex("ix_t_c1x", "t", "c2"); err == nil {
		// index on c2 exists already; ignore error shape
		_ = err
	}
	if err := eng.Analyze("s"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(
		"SELECT COUNT(padding) FROM t, s WHERE s.v < 100 AND s.c1 = t.c1",
		&RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 100 {
		t.Errorf("join count = %d, want 100", res.Rows[0][0].Int)
	}
	// A join-DPC result should be present for at least one side.
	foundJoin := false
	for _, r := range res.DPC {
		if r.Request.Join && r.Mechanism != MechUnsatisfiable {
			foundJoin = true
		}
	}
	if !foundJoin {
		t.Errorf("no satisfiable join DPC result: %+v", res.DPC)
	}
}

func TestEngineDefaults(t *testing.T) {
	eng := New(Config{}) // all defaults applied
	if eng.Pool().Capacity() < 64 {
		t.Error("pool default not applied")
	}
	if _, err := eng.Query("SELECT COUNT(*) FROM missing", nil); err == nil {
		t.Error("query on missing table succeeded")
	}
	if err := eng.Load("missing", nil); err == nil {
		t.Error("load into missing table succeeded")
	}
	if _, err := eng.CreateIndex("i", "missing", "c"); err == nil {
		t.Error("index on missing table succeeded")
	}
}

func TestMonitoringOverheadIsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	eng := buildTestDB(t, 50000)
	const q = "SELECT COUNT(padding) FROM t WHERE c2 < 2500"
	measure := func(opts *RunOptions) time.Duration {
		// Warm cache so wall time is CPU-bound, then take the best of 5.
		best := time.Duration(1 << 62)
		for i := 0; i < 5; i++ {
			res, err := eng.Query(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.WallTime < best {
				best = res.WallTime
			}
		}
		return best
	}
	base := measure(&RunOptions{WarmCache: true})
	mon := measure(&RunOptions{WarmCache: true, MonitorAll: true, SampleFraction: 0.01})
	overhead := float64(mon-base) / float64(base)
	// The paper reports <2%; allow generous slack for wall-clock noise in
	// CI-like environments.
	if overhead > 0.35 {
		t.Errorf("monitoring overhead %.1f%% (base %v, monitored %v)",
			overhead*100, base, mon)
	}
}
