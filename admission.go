package pagefeedback

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// admissionGate bounds the number of queries executing concurrently inside
// one Engine. Queries beyond the limit wait in FIFO order; a waiter whose
// context expires (deadline or cancellation) gives up its place and surfaces
// a *QueryError of kind ErrKindOverload (wrapping the context error), and a
// full queue rejects new arrivals immediately. The gate exists so that an
// overloaded engine degrades by queueing and shedding — not by thrashing the
// buffer pool across dozens of interleaved scans.
type admissionGate struct {
	mu      sync.Mutex
	limit   int // max concurrently admitted; <= 0 disables the gate
	maxWait int // max queued waiters; <= 0 means unbounded
	active  int
	waiters []*admissionWaiter

	// cumulative telemetry
	admitted  int64
	rejected  int64
	timedOut  int64
	waitTime  time.Duration
	peakQueue int
}

// admissionWaiter is one queued admission request. grant is closed exactly
// once, by releaseLocked, when the waiter is popped from the queue; a waiter
// that already gave up forwards the grant to the next in line. limit is the
// concurrency bound the waiter was admitted under (per-call overrides are
// honored at hand-off, not just at arrival).
type admissionWaiter struct {
	grant     chan struct{}
	limit     int
	abandoned bool
}

func newAdmissionGate(limit, maxQueue int) *admissionGate {
	return &admissionGate{limit: limit, maxWait: maxQueue}
}

// acquire blocks until the query may run, the context expires, or the queue
// is full. It returns the time spent queued and the queue depth observed at
// arrival. effLimit > 0 overrides the gate's configured limit for this call
// (RunOptions.MaxConcurrent); the override only tightens or loosens the
// admit check, not the queue bound.
func (g *admissionGate) acquire(ctx context.Context, effLimit int) (queueWait time.Duration, queueDepth int, err error) {
	g.mu.Lock()
	limit := g.limit
	if effLimit > 0 {
		limit = effLimit
	}
	if limit <= 0 {
		g.active++
		g.admitted++
		g.mu.Unlock()
		return 0, 0, nil
	}
	if g.active < limit && len(g.waiters) == 0 {
		g.active++
		g.admitted++
		g.mu.Unlock()
		return 0, 0, nil
	}
	if g.maxWait > 0 && len(g.waiters) >= g.maxWait {
		g.rejected++
		g.mu.Unlock()
		return 0, len(g.waiters), &QueryError{
			Kind: ErrKindOverload,
			Err:  fmt.Errorf("admission queue full (%d waiting, limit %d)", g.maxWait, limit),
		}
	}
	w := &admissionWaiter{grant: make(chan struct{}), limit: limit}
	g.waiters = append(g.waiters, w)
	queueDepth = len(g.waiters)
	if queueDepth > g.peakQueue {
		g.peakQueue = queueDepth
	}
	g.mu.Unlock()

	start := time.Now()
	select {
	case <-w.grant:
		// releaseLocked popped us and pre-incremented active on our behalf.
		queueWait = time.Since(start)
		g.mu.Lock()
		g.admitted++
		g.waitTime += queueWait
		g.mu.Unlock()
		return queueWait, queueDepth, nil
	case <-ctx.Done():
		queueWait = time.Since(start)
		g.mu.Lock()
		select {
		case <-w.grant:
			// Lost the race: a release granted us between ctx firing and the
			// lock. The slot is ours to give back; hand it to the next waiter.
			g.releaseLocked()
		default:
			w.abandoned = true
		}
		g.timedOut++
		g.waitTime += queueWait
		g.mu.Unlock()
		return queueWait, queueDepth, &QueryError{
			Kind: ErrKindOverload,
			Err:  fmt.Errorf("admission wait abandoned after %v: %w", queueWait.Round(time.Microsecond), ctx.Err()),
		}
	}
}

// release returns one admission slot and wakes the head waiter, if any.
func (g *admissionGate) release() {
	g.mu.Lock()
	g.releaseLocked()
	g.mu.Unlock()
}

// releaseLocked decrements active, then grants slots to queued waiters head
// first, skipping (and discarding) abandoned ones. Each waiter is admitted
// against its own recorded limit. The granted waiter's active slot is
// incremented here, before the grant channel closes, so there is no window
// where the slot is neither held nor reserved.
func (g *admissionGate) releaseLocked() {
	g.active--
	for len(g.waiters) > 0 {
		w := g.waiters[0]
		if !w.abandoned && g.active >= w.limit {
			return
		}
		g.waiters = g.waiters[1:]
		if w.abandoned {
			continue
		}
		g.active++
		close(w.grant)
	}
}

// pressureLevel maps current queue depth to a shed level on the paper's
// degradation lattice: 0 no pressure, 1 any waiters, 2 a full limit's worth
// queued, 3 four limits' worth. Used by RunOptions.ShedUnderPressure.
func (g *admissionGate) pressureLevel() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.limit <= 0 || len(g.waiters) == 0 {
		return 0
	}
	switch depth := len(g.waiters); {
	case depth >= 4*g.limit:
		return 3
	case depth >= g.limit:
		return 2
	default:
		return 1
	}
}

// AdmissionStats is a snapshot of the gate's counters.
type AdmissionStats struct {
	// Limit is the configured concurrency limit (0 = unlimited).
	Limit int
	// Active is the number of queries currently admitted.
	Active int
	// Queued is the number of queries currently waiting.
	Queued int
	// PeakQueued is the deepest the queue has been.
	PeakQueued int
	// Admitted counts queries that got a slot (immediately or after waiting).
	Admitted int64
	// Rejected counts queries turned away by the queue-depth bound.
	Rejected int64
	// TimedOut counts waiters whose context expired while queued.
	TimedOut int64
	// WaitTime is the cumulative time queries spent queued.
	WaitTime time.Duration
}

// liveWaitersLocked counts queued waiters that have not abandoned their
// slot (an abandoned waiter still occupies a queue entry until a grant
// passes over it). Callers hold g.mu.
func (g *admissionGate) liveWaitersLocked() int {
	live := 0
	for _, w := range g.waiters {
		if !w.abandoned {
			live++
		}
	}
	return live
}

// occupancy reports the gate's instantaneous state — admitted queries, live
// waiters, and the deepest the queue has been — backing the engine's
// pf_queries_active / pf_admission_queued / pf_admission_peak_queued
// gauges, which are refreshed at snapshot time rather than on every
// admission event.
func (g *admissionGate) occupancy() (active, queued, peakQueued int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.active, g.liveWaitersLocked(), g.peakQueue
}

// AdmissionStats reports the engine's admission-control counters.
func (e *Engine) AdmissionStats() AdmissionStats {
	g := e.gate
	g.mu.Lock()
	defer g.mu.Unlock()
	return AdmissionStats{
		Limit:      g.limit,
		Active:     g.active,
		Queued:     g.liveWaitersLocked(),
		PeakQueued: g.peakQueue,
		Admitted:   g.admitted,
		Rejected:   g.rejected,
		TimedOut:   g.timedOut,
		WaitTime:   g.waitTime,
	}
}
