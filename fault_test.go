package pagefeedback

import (
	"errors"
	"strings"
	"testing"

	"pagefeedback/internal/storage"
)

// TestDiskFaultsPropagateCleanly injects read faults at varying depths and
// asserts every layer — B+tree descent, scans, fetches, joins, the whole
// engine — surfaces an error rather than panicking or returning wrong
// results.
func TestDiskFaultsPropagateCleanly(t *testing.T) {
	queries := []string{
		"SELECT COUNT(padding) FROM t WHERE c2 < 500",
		"SELECT * FROM t WHERE c1 BETWEEN 10 AND 40 ORDER BY c5",
		"SELECT c5 FROM t WHERE c5 < 50",
	}
	for _, fail := range []int64{0, 1, 5, 50} {
		eng := buildTestDB(t, 8000)
		// Force index plans sometimes so Fetch paths fail too.
		pq, _ := eng.ParseQuery(queries[0])
		eng.Optimizer().InjectDPC("t", pq.Pred, 1)

		eng.Pool().Disk().FailReadsAfter(fail)
		sawError := false
		for _, q := range queries {
			_, err := eng.Query(q, &RunOptions{MonitorAll: true})
			if err == nil {
				// A query cheap enough to finish inside the remaining read
				// budget legitimately succeeds; the invariants are "no
				// panic" and "errors are the injected fault".
				continue
			}
			sawError = true
			if !errors.Is(err, storage.ErrInjectedFault) &&
				!strings.Contains(err.Error(), "injected read fault") {
				t.Errorf("fail-after=%d: unexpected error %v", fail, err)
			}
		}
		if fail <= 5 && !sawError {
			t.Errorf("fail-after=%d: no query surfaced the injected fault", fail)
		}
		eng.Pool().Disk().FailReadsAfter(-1) // disarm
		// The engine remains usable after the device recovers.
		res, err := eng.Query(queries[0], nil)
		if err != nil {
			t.Fatalf("post-recovery query failed: %v", err)
		}
		if res.Rows[0][0].Int != 500 {
			t.Errorf("post-recovery count = %d", res.Rows[0][0].Int)
		}
	}
}

// TestNoPinLeakAfterMidDrainFault: blocking operators (hash build, sorts,
// group aggregates) drain their inputs inside Open. A row that fails to
// DECODE errors while its page is still pinned (unlike a read fault, where
// the iterator has already unpinned); if the drain doesn't release that
// pin, every later cold-cache Reset fails. The test corrupts one data page
// of t on "disk" and checks each blocking shape recovers.
func TestNoPinLeakAfterMidDrainFault(t *testing.T) {
	// A heap table whose rows end in a string: corrupting cell payloads
	// turns the string's length field into garbage, so Decode errors while
	// the page is still pinned by the iterator.
	buildEnv := func() *Engine {
		eng := New(DefaultConfig())
		h := NewSchema(
			Column{Name: "k", Kind: KindInt},
			Column{Name: "pad", Kind: KindString},
		)
		if _, err := eng.CreateHeapTable("h", h); err != nil {
			t.Fatal(err)
		}
		rows := make([]Row, 2000)
		for i := range rows {
			rows[i] = Row{Int64(int64(i)), Str(strings.Repeat("p", 60))}
		}
		if err := eng.Load("h", rows); err != nil {
			t.Fatal(err)
		}
		v := NewSchema(
			Column{Name: "k", Kind: KindInt},
			Column{Name: "val", Kind: KindInt},
		)
		if _, err := eng.CreateClusteredTable("v", v, []string{"k"}); err != nil {
			t.Fatal(err)
		}
		vrows := make([]Row, 8000)
		for i := range vrows {
			vrows[i] = Row{Int64(int64(i)), Int64(int64(i))}
		}
		if err := eng.Load("v", vrows); err != nil {
			t.Fatal(err)
		}
		if err := eng.Analyze("h", "v"); err != nil {
			t.Fatal(err)
		}
		// Corrupt the cell payload region of heap page 2 of h (file 0),
		// keeping the slot directory intact so iteration reaches the cells.
		// Flush first: otherwise the pool's clean cached copy would be
		// written back over the corruption at the next cold-cache reset.
		if err := eng.Pool().Reset(); err != nil {
			t.Fatal(err)
		}
		disk := eng.Pool().Disk()
		buf := make([]byte, storage.PageSize)
		if err := disk.ReadPage(0, 2, buf); err != nil {
			t.Fatal(err)
		}
		for i := storage.PageSize - 3000; i < storage.PageSize; i++ {
			buf[i] = 0xFF
		}
		if err := disk.WritePage(0, 2, buf); err != nil {
			t.Fatal(err)
		}
		return eng
	}

	queries := []string{
		// Hash join: h (smaller) drains as the build side.
		"SELECT COUNT(pad) FROM h, v WHERE v.k = h.k",
		// Sort: corruption while draining the scan under ORDER BY.
		"SELECT k FROM h ORDER BY k DESC",
		// Group aggregate: corruption while draining.
		"SELECT k, COUNT(*) FROM h GROUP BY k",
	}
	for _, q := range queries {
		eng := buildEnv()
		if _, err := eng.Query(q, nil); err == nil {
			t.Fatalf("%q succeeded over a corrupt page", q)
		}
		// The pool must be fully unpinned: the next cold-cache query (its
		// Reset fails if any pin leaked) runs against the intact table.
		res, err := eng.Query("SELECT COUNT(*) FROM v WHERE k < 10", nil)
		if err != nil {
			t.Fatalf("%q leaked pins: %v", q, err)
		}
		if res.Rows[0][0].Int != 10 {
			t.Fatalf("post-corruption count = %d", res.Rows[0][0].Int)
		}
	}
}

// TestJoinFaultPropagation drives faults through the join operators.
func TestJoinFaultPropagation(t *testing.T) {
	eng := joinTestEnv(t, 8000)
	sql := "SELECT COUNT(padding) FROM t, u WHERE u.c1 < 100 AND u.c2 = t.c2"
	eng.Pool().Disk().FailReadsAfter(20)
	if _, err := eng.Query(sql, &RunOptions{MonitorAll: true, SampleFraction: 1.0}); err == nil {
		t.Error("join under injected faults succeeded")
	}
	eng.Pool().Disk().FailReadsAfter(-1)
	if _, err := eng.Query(sql, nil); err != nil {
		t.Fatalf("post-recovery join failed: %v", err)
	}
}
