package pagefeedback_test

// BenchmarkParallelScan and BenchmarkParallelHashJoin measure the intra-query
// parallel mode (RunOptions.Parallelism) against the serial baseline on a warm
// cache, where the win is pure CPU scaling: page decode, predicate evaluation,
// and hash-probe work split across partitioned workers.
//
//	go test -bench BenchmarkParallel -run xxx .
//
// Before timing, each benchmark runs the query monitored at degree 1 and
// degree 4 and requires the DPC feedback to be identical — the parallel mode's
// correctness contract — and records that, plus the per-degree timings and the
// speedup, in BENCH_parallel.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"pagefeedback"
	"pagefeedback/internal/plan"
)

// ensureProcs raises GOMAXPROCS to at least n so the parallel mode actually
// spawns workers on small containers (the engine clamps the degree to
// GOMAXPROCS). Wall-clock speedup still requires real cores; the recorded
// "cpus" value says how many this run had.
func ensureProcs(n int) func() {
	if runtime.GOMAXPROCS(0) >= n {
		return func() {}
	}
	old := runtime.GOMAXPROCS(n)
	return func() { runtime.GOMAXPROCS(old) }
}

// buildParallelBenchEngine creates fbig (clustered on id, wide rows so the
// table spans many pages) and fdim (small heap build side). Neither v nor fk
// is indexed, so predicate scans and the join probe must read every page —
// the shape partitioned workers exist for.
func buildParallelBenchEngine(b *testing.B, rows int) *pagefeedback.Engine {
	b.Helper()
	eng := pagefeedback.New(pagefeedback.DefaultConfig())
	schema := pagefeedback.NewSchema(
		pagefeedback.Column{Name: "id", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "fk", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "v", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "pad", Kind: pagefeedback.KindString},
	)
	if _, err := eng.CreateClusteredTable("fbig", schema, []string{"id"}); err != nil {
		b.Fatal(err)
	}
	pad := strings.Repeat("p", 48)
	data := make([]pagefeedback.Row, rows)
	for i := range data {
		data[i] = pagefeedback.Row{
			pagefeedback.Int64(int64(i)),
			pagefeedback.Int64(int64(i * 11 % (rows / 16))),
			pagefeedback.Int64(int64(i * 13 % rows)),
			pagefeedback.Str(pad),
		}
	}
	if err := eng.Load("fbig", data); err != nil {
		b.Fatal(err)
	}

	dschema := pagefeedback.NewSchema(
		pagefeedback.Column{Name: "id", Kind: pagefeedback.KindInt},
		pagefeedback.Column{Name: "val", Kind: pagefeedback.KindInt},
	)
	if _, err := eng.CreateHeapTable("fdim", dschema); err != nil {
		b.Fatal(err)
	}
	ddata := make([]pagefeedback.Row, rows/16)
	for i := range ddata {
		ddata[i] = pagefeedback.Row{pagefeedback.Int64(int64(i)), pagefeedback.Int64(int64(i % 997))}
	}
	if err := eng.Load("fdim", ddata); err != nil {
		b.Fatal(err)
	}
	if err := eng.Analyze("fbig", "fdim"); err != nil {
		b.Fatal(err)
	}
	// Warm the pool; the timed loops run entirely warm so the comparison is
	// CPU scaling, not the simulated I/O clock.
	if _, err := eng.Query("SELECT COUNT(pad) FROM fbig WHERE v < 1000000000",
		&pagefeedback.RunOptions{WarmCache: true}); err != nil {
		b.Fatal(err)
	}
	return eng
}

// assertSameFeedback runs the query monitored at serial and parallel degree
// and requires byte-identical DPC feedback; it returns the executed plan.
func assertSameFeedback(b *testing.B, eng *pagefeedback.Engine, sql string, deg int) plan.Node {
	b.Helper()
	mon := func(p int) *pagefeedback.Result {
		res, err := eng.Query(sql, &pagefeedback.RunOptions{
			MonitorAll: true, SampleFraction: 0.25, WarmCache: true, Parallelism: p,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	ser, par := mon(1), mon(deg)
	if !reflect.DeepEqual(ser.DPC, par.DPC) {
		b.Fatalf("DPC feedback differs between serial and parallelism %d:\n  serial   %+v\n  parallel %+v",
			deg, ser.DPC, par.DPC)
	}
	return par.Plan
}

// benchDegrees times the query at parallelism 1 and parDegree and returns
// secs/op for each.
func benchDegrees(b *testing.B, eng *pagefeedback.Engine, sql string, parDegree int) (serial, parallel float64) {
	secs := map[int]float64{}
	for _, deg := range []int{1, parDegree} {
		deg := deg
		b.Run(fmt.Sprintf("p%d", deg), func(b *testing.B) {
			// The testing package resets GOMAXPROCS per sub-benchmark from
			// the -cpu list, so the raise must happen inside the body.
			defer ensureProcs(deg)()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(sql, &pagefeedback.RunOptions{
					WarmCache: true, Parallelism: deg,
				}); err != nil {
					b.Fatal(err)
				}
			}
			secs[deg] = b.Elapsed().Seconds() / float64(b.N)
		})
	}
	return secs[1], secs[parDegree]
}

func BenchmarkParallelScan(b *testing.B) {
	const parDegree = 4
	defer ensureProcs(parDegree)()
	eng := buildParallelBenchEngine(b, 120000)
	sql := "SELECT COUNT(pad) FROM fbig WHERE v < 90000" // v unindexed: full scan

	assertSameFeedback(b, eng, sql, parDegree)
	ser, par := benchDegrees(b, eng, sql, parDegree)
	recordParallelBench(b, "BenchmarkParallelScan", parDegree, ser, par)
}

func BenchmarkParallelHashJoin(b *testing.B) {
	const parDegree = 4
	defer ensureProcs(parDegree)()
	eng := buildParallelBenchEngine(b, 120000)
	// fk is unindexed, so the only viable plans probe fbig in full; the
	// optimizer builds a hash table on the small fdim side and the probe
	// scan partitions at Parallelism > 1.
	sql := "SELECT COUNT(pad) FROM fdim, fbig WHERE fdim.val < 400 AND fdim.id = fbig.fk"

	p := assertSameFeedback(b, eng, sql, parDegree)
	if !strings.Contains(plan.Format(p), "HashJoin") {
		b.Fatalf("expected a hash join plan, got:\n%s", plan.Format(p))
	}
	ser, par := benchDegrees(b, eng, sql, parDegree)
	recordParallelBench(b, "BenchmarkParallelHashJoin", parDegree, ser, par)
}

// recordParallelBench merges one benchmark's headline numbers into
// BENCH_parallel.json (keyed by benchmark name, so the scan and join runs
// accumulate into one document). Errors are non-fatal: the benchmark's job is
// the measurement.
func recordParallelBench(b *testing.B, name string, deg int, serialSecs, parallelSecs float64) {
	const path = "BENCH_parallel.json"
	doc := map[string]map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &doc)
	}
	speedup := 0.0
	if parallelSecs > 0 {
		speedup = serialSecs / parallelSecs
	}
	doc[name] = map[string]any{
		"degree":             deg,
		"gomaxprocs":         runtime.GOMAXPROCS(0),
		"cpus":               runtime.NumCPU(),
		"secs_per_op_serial": serialSecs,
		"secs_per_op_par":    parallelSecs,
		"speedup":            speedup,
		"feedback_identical": true, // asserted before timing; the run fails otherwise
	}
	b.ReportMetric(speedup, "speedup")
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Logf("%s not written: %v", path, err)
	}
}
