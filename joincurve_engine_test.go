package pagefeedback

import (
	"fmt"
	"strings"
	"testing"

	"pagefeedback/internal/plan"
)

// joinEnv builds two clustered tables where the join column c2 of the inner
// correlates with its clustering key, so INL joins are cheap but the
// Mackert-Lohman estimate says otherwise.
func joinTestEnv(t *testing.T, n int) *Engine {
	t.Helper()
	eng := buildTestDB(t, n) // table t: c1(=id), c2 correlated, c5 random
	schema := NewSchema(
		Column{Name: "c1", Kind: KindInt},
		Column{Name: "c2", Kind: KindInt},
	)
	if _, err := eng.CreateClusteredTable("u", schema, []string{"c1"}); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Int64(int64(i)), Int64(int64(i))}
	}
	if err := eng.Load("u", rows); err != nil {
		t.Fatal(err)
	}
	if err := eng.Analyze("u"); err != nil {
		t.Fatal(err)
	}
	return eng
}

func joinMethodOf(t *testing.T, eng *Engine, sql string) plan.JoinMethod {
	t.Helper()
	q, err := eng.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	node, err := eng.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := node.(*plan.Agg).Input.(*plan.Join)
	if !ok {
		t.Fatalf("plan input is %T", node.(*plan.Agg).Input)
	}
	return j.Method
}

// TestJoinCurveGeneralizesAcrossSelectivities: feedback from ONE join run
// teaches the curve, and a join at a different selectivity on the same
// column flips to INL without being re-monitored — the §VI join-statistics
// extension working end to end.
func TestJoinCurveGeneralizesAcrossSelectivities(t *testing.T) {
	const n = 20000
	eng := joinTestEnv(t, n)
	mkSQL := func(sel int) string {
		return fmt.Sprintf(
			"SELECT COUNT(padding) FROM t, u WHERE u.c1 < %d AND u.c2 = t.c2", sel)
	}

	// Both selectivities start as Hash (the analytical join DPC is huge).
	if m := joinMethodOf(t, eng, mkSQL(200)); m == plan.INLJoin {
		t.Fatalf("pre-feedback method = %v", m)
	}
	if m := joinMethodOf(t, eng, mkSQL(600)); m == plan.INLJoin {
		t.Fatalf("pre-feedback method = %v", m)
	}

	// Monitor only the 200-row join.
	res, err := eng.Query(mkSQL(200), &RunOptions{MonitorAll: true, SampleFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	eng.ApplyFeedback(res)
	if c, ok := eng.Optimizer().JoinDPCCurve("t", "c2"); !ok || c.Len() == 0 {
		t.Fatal("join curve not learned")
	}

	// The same query flips...
	if m := joinMethodOf(t, eng, mkSQL(200)); m != plan.INLJoin {
		t.Errorf("same-selectivity method = %v, want INL", m)
	}
	// ...and so does the 3x-selectivity variant, via curve extrapolation.
	if m := joinMethodOf(t, eng, mkSQL(600)); m != plan.INLJoin {
		t.Errorf("generalized method = %v, want INL", m)
	}
	// Execution at the generalized selectivity is correct and faster than
	// the hash plan.
	resINL, err := eng.Query(mkSQL(600), nil)
	if err != nil {
		t.Fatal(err)
	}
	if resINL.Rows[0][0].Int != 600 {
		t.Errorf("count = %d", resINL.Rows[0][0].Int)
	}
}

// TestJoinCurveUncorrelatedStaysHash: learning on the scattered column must
// confirm, not flip, the hash plan.
func TestJoinCurveUncorrelatedStaysHash(t *testing.T) {
	const n = 20000
	eng := joinTestEnv(t, n)
	sql := "SELECT COUNT(padding) FROM t, u WHERE u.c1 < 300 AND u.c2 = t.c5"
	res, err := eng.Query(sql, &RunOptions{MonitorAll: true, SampleFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	eng.ApplyFeedback(res)
	if m := joinMethodOf(t, eng, sql); m == plan.INLJoin {
		t.Errorf("scattered join flipped to INL after feedback")
	}
	sql2 := strings.Replace(sql, "< 300", "< 900", 1)
	if m := joinMethodOf(t, eng, sql2); m == plan.INLJoin {
		t.Errorf("scattered join (other selectivity) flipped to INL")
	}
}
