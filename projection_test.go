package pagefeedback

import (
	"strings"
	"testing"
)

func TestProjectionEndToEnd(t *testing.T) {
	eng := buildTestDB(t, 5000)
	res, err := eng.Query("SELECT c1, c5 FROM t WHERE c1 < 10 ORDER BY c5 DESC", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("returned %d rows", len(res.Rows))
	}
	if len(res.Rows[0]) != 2 {
		t.Fatalf("row width %d, want 2", len(res.Rows[0]))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1].Int > res.Rows[i-1][1].Int {
			t.Fatal("not sorted descending by c5")
		}
	}
}

func TestProjectionLimitStopsEarly(t *testing.T) {
	eng := buildTestDB(t, 20000)
	res, err := eng.Query("SELECT c1 FROM t WHERE c1 >= 0 LIMIT 7", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("returned %d rows", len(res.Rows))
	}
	// A LIMIT over a range scan must not read the whole table: far fewer
	// physical reads than the ~270 data pages.
	if res.Stats.Runtime.PhysicalReads > 50 {
		t.Errorf("LIMIT read %d pages", res.Stats.Runtime.PhysicalReads)
	}
}

func TestSelectStar(t *testing.T) {
	eng := buildTestDB(t, 5000)
	res, err := eng.Query("SELECT * FROM t WHERE c1 = 42", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("returned %d rows", len(res.Rows))
	}
	if len(res.Rows[0]) != 4 { // c1, c2, c5, padding
		t.Errorf("row width %d, want 4", len(res.Rows[0]))
	}
	if res.Rows[0][0].Int != 42 || res.Rows[0][1].Int != 42 {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestProjectionOverJoin(t *testing.T) {
	eng := joinTestEnv(t, 5000)
	res, err := eng.Query(
		"SELECT t.c1, u.c2 FROM t, u WHERE u.c1 < 5 AND u.c2 = t.c2 ORDER BY t.c1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("returned %d rows", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[0].Int != int64(i) || row[1].Int != int64(i) {
			t.Errorf("row %d = %v", i, row)
		}
	}
}

func TestProjectionMonitoringStillWorks(t *testing.T) {
	eng := buildTestDB(t, 20000)
	res, err := eng.Query("SELECT c1 FROM t WHERE c2 < 300",
		&RunOptions{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 300 {
		t.Fatalf("returned %d rows", len(res.Rows))
	}
	if len(res.DPC) == 0 || res.DPC[0].Mechanism == MechUnsatisfiable {
		t.Fatalf("projection query not monitored: %+v", res.DPC)
	}
	if res.DPC[0].DPC <= 0 {
		t.Error("no DPC observed")
	}
	// Feedback applies to projection queries identically.
	eng.ApplyFeedback(res)
	out, err := eng.Explain("SELECT c1 FROM t WHERE c2 < 300")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "execution feedback") {
		t.Errorf("explain after projection feedback:\n%s", out)
	}
}

func TestProjectionCoveringIndex(t *testing.T) {
	eng := buildTestDB(t, 20000)
	// SELECT c2 ... WHERE c2 < k is fully covered by ix_c2.
	res, err := eng.Query("SELECT c2 FROM t WHERE c2 < 100", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 100 {
		t.Fatalf("returned %d rows", len(res.Rows))
	}
	label := res.Stats.Plan.Label
	for len(res.Stats.Plan.Children) > 0 && !strings.Contains(label, "Scan") && !strings.Contains(label, "Seek") {
		res.Stats.Plan = res.Stats.Plan.Children[0]
		label = res.Stats.Plan.Label
	}
	if !strings.Contains(label, "CoveringScan") {
		t.Logf("access = %s (covering scan not mandatory, informational)", label)
	}
}
