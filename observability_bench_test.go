package pagefeedback_test

import (
	"testing"

	"pagefeedback"
)

// BenchmarkTraceOverhead measures the cost of span tracing against the
// identical untraced query — the number the "guaranteed-cheap when off,
// bounded when on" design claim rests on. Both sub-benchmarks run the warm
// 64k-row throughput scan serially so the ratio isolates the tracing hook
// itself rather than scheduler noise. The off/on ns-per-op pair is appended
// to BENCH_observability.json when both sub-benchmarks ran (under `make
// bench`; a -bench filter hitting only one side skips the write).
func BenchmarkTraceOverhead(b *testing.B) {
	const rows = 64000
	sql := "SELECT COUNT(w) FROM tb WHERE v < 32000"
	run := func(b *testing.B, trace bool) float64 {
		eng := buildBenchEngine(b, rows)
		opts := &pagefeedback.RunOptions{WarmCache: true, Trace: trace}
		if _, err := eng.Query(sql, opts); err != nil { // warm the pool and plan cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(sql, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		return float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	}
	var offNs, onNs float64
	b.Run("off", func(b *testing.B) { offNs = run(b, false) })
	b.Run("on", func(b *testing.B) { onNs = run(b, true) })
	if offNs > 0 && onNs > 0 {
		writeBenchJSON(b, "BENCH_observability.json", "BenchmarkTraceOverhead", map[string]any{
			"off_ns_per_op": offNs,
			"on_ns_per_op":  onNs,
			"overhead_pct":  (onNs - offNs) / offNs * 100,
		})
	}
}
