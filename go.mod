module pagefeedback

go 1.22
