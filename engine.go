// Package pagefeedback is a storage-engine-to-optimizer reproduction of
// "Diagnosing Estimation Errors in Page Counts Using Execution Feedback"
// (Chaudhuri, Narasayya, Ramamurthy; ICDE 2008).
//
// The Engine bundles a paged storage engine with a simulated I/O clock, a
// cost-based optimizer whose distinct-page-count (DPC) estimates come from
// the classic Cardenas/Mackert–Lohman analytical model, and the paper's
// contribution: low-overhead monitors that observe the true DPC during
// query execution and feed it back into optimization.
//
// Typical flow:
//
//	eng := pagefeedback.New(pagefeedback.DefaultConfig())
//	... create and load tables, create indexes, eng.Analyze(...)
//	res, _ := eng.Query("SELECT COUNT(pad) FROM t WHERE c2 < 1000",
//	    &pagefeedback.RunOptions{MonitorAll: true})
//	... res.DPC compares the optimizer's estimate with the observed count
//	eng.ApplyFeedback(res)     // inject observed DPCs
//	res2, _ := eng.Query(...)  // re-optimized, typically a better plan
package pagefeedback

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"pagefeedback/internal/catalog"
	"pagefeedback/internal/core"
	"pagefeedback/internal/exec"
	"pagefeedback/internal/expr"
	"pagefeedback/internal/opt"
	"pagefeedback/internal/plan"
	"pagefeedback/internal/sql"
	"pagefeedback/internal/storage"
	"pagefeedback/internal/trace"
	"pagefeedback/internal/tuple"
)

// Config sets up an Engine.
type Config struct {
	// IOModel is the simulated device timing; the optimizer costs plans
	// with the same constants.
	IOModel storage.IOModel
	// PoolPages is the buffer pool capacity in 8 KB pages.
	PoolPages int
	// CPUPerRow is the simulated CPU cost per row processed.
	CPUPerRow time.Duration
	// MaxConcurrent bounds how many queries may execute at once; excess
	// queries wait in a FIFO admission queue. 0 disables admission control.
	MaxConcurrent int
	// MaxQueueDepth bounds the admission queue; arrivals beyond it are
	// rejected immediately with ErrKindOverload. 0 means unbounded.
	MaxQueueDepth int
	// PoolWaitBudget is how long a query waits for a buffer-pool frame to
	// free up before failing with pool exhaustion. 0 fails fast, preserving
	// the pool's historical behavior.
	PoolWaitBudget time.Duration
	// PlanCacheSize bounds the plan cache (optimized plan templates keyed by
	// query shape and selectivity bucket, invalidated by feedback epochs).
	// 0 uses the default capacity; negative disables plan caching.
	PlanCacheSize int
	// SlowQueryThreshold, when > 0, arms the slow-query log: every query is
	// executed with tracing on (the documented cost of the feature), and any
	// query whose wall time meets the threshold is captured — trace, plan,
	// and runtime stats — retrievable via SlowQueries.
	SlowQueryThreshold time.Duration
	// SlowQueryLogSize bounds the slow-query log; older entries are evicted.
	// 0 uses the default (32).
	SlowQueryLogSize int
	// TraceSpanCapacity sizes per-query trace buffers in spans. 0 uses
	// trace.DefaultCapacity.
	TraceSpanCapacity int
}

// DefaultConfig returns a 2007-era disk model, a 64 MB buffer pool,
// 1 µs/row CPU, no admission limit, and a 25 ms pool-wait budget.
func DefaultConfig() Config {
	return Config{
		IOModel:        storage.DefaultIOModel(),
		PoolPages:      8192,
		CPUPerRow:      time.Microsecond,
		PoolWaitBudget: 25 * time.Millisecond,
	}
}

// Engine is one database instance.
type Engine struct {
	cfg   Config
	disk  *storage.DiskManager
	pool  *storage.BufferPool
	cat   *catalog.Catalog
	opt   *opt.Optimizer
	cache *core.FeedbackCache
	gate  *admissionGate
	met   *engineMetrics
	slow  *slowLog

	// epochs tracks per-table feedback epochs; plans caches optimized plan
	// templates validated against them. plans is nil when caching is
	// disabled.
	epochs *core.EpochTracker
	plans  *planCache

	// fmu guards tracked, histCols, and joinCols: ApplyFeedback,
	// InvalidateFeedback, ImportFeedback, and ExportFeedback may run
	// concurrently with each other and with queries.
	fmu sync.Mutex
	// tracked mirrors the feedback cache with structured predicates (the
	// cache stores rendered text), for ExportFeedback; histCols and
	// joinCols record which histograms/curves have received observations.
	tracked  map[string]trackedEntry
	histCols map[[2]string]bool
	joinCols map[[2]string]bool
}

// New creates an empty engine.
func New(cfg Config) *Engine {
	if cfg.PoolPages < 64 {
		cfg.PoolPages = 64
	}
	if cfg.CPUPerRow <= 0 {
		cfg.CPUPerRow = time.Microsecond
	}
	if cfg.IOModel.RandomRead == 0 {
		cfg.IOModel = storage.DefaultIOModel()
	}
	disk := storage.NewDiskManager(cfg.IOModel)
	pool := storage.NewBufferPool(disk, cfg.PoolPages)
	pool.SetWaitBudget(cfg.PoolWaitBudget)
	cat := catalog.New(pool)
	e := &Engine{
		cfg:      cfg,
		disk:     disk,
		pool:     pool,
		cat:      cat,
		gate:     newAdmissionGate(cfg.MaxConcurrent, cfg.MaxQueueDepth),
		opt:      opt.New(cat, cfg.IOModel, cfg.CPUPerRow),
		cache:    core.NewFeedbackCache(),
		met:      newEngineMetrics(),
		slow:     newSlowLog(cfg.SlowQueryLogSize),
		epochs:   core.NewEpochTracker(),
		tracked:  make(map[string]trackedEntry),
		histCols: make(map[[2]string]bool),
		joinCols: make(map[[2]string]bool),
	}
	if cfg.PlanCacheSize >= 0 {
		size := cfg.PlanCacheSize
		if size == 0 {
			size = defaultPlanCacheSize
		}
		e.plans = newPlanCache(size)
	}
	// Every feedback mutation in the optimizer — injections, Analyze,
	// DropTableFeedback, histogram/curve observations — bumps the affected
	// table's epoch, invalidating cached plans built from the old state.
	e.opt.SetInvalidationHook(e.bumpPlanEpoch)
	// Buffer-pool frame waits feed the pool-wait histogram directly from
	// the storage layer; the observer is a pair of atomic adds, cheap
	// enough for the (rare) blocked path it runs on.
	pool.SetWaitObserver(func(d time.Duration) {
		e.met.poolFrameWait.Observe(d.Microseconds())
	})
	return e
}

// track records a structured copy of a cache entry for ExportFeedback.
func (e *Engine) track(table string, pred expr.Conjunction, entry core.FeedbackEntry) {
	e.fmu.Lock()
	e.tracked[core.Key(table, pred)] = trackedEntry{table: table, pred: pred, entry: entry}
	e.fmu.Unlock()
}

// tableVersion returns the modification counter of the named table (0 if
// it does not exist).
func (e *Engine) tableVersion(name string) int64 {
	if tab, ok := e.cat.Table(name); ok {
		return tab.Version()
	}
	return 0
}

// InvalidateFeedback drops every learned statistic, injection, and cache
// entry for the table. The engine calls it automatically when data loads
// through Load; callers mutating tables through the catalog directly should
// call it themselves — stale page counts carry false confidence (§VI).
func (e *Engine) InvalidateFeedback(table string) {
	e.cache.DropTable(table)
	e.opt.DropTableFeedback(table)
	e.fmu.Lock()
	defer e.fmu.Unlock()
	lower := strings.ToLower(table)
	for k, te := range e.tracked {
		if strings.EqualFold(te.table, table) {
			delete(e.tracked, k)
		}
	}
	for k := range e.histCols {
		if strings.ToLower(k[0]) == lower {
			delete(e.histCols, k)
		}
	}
	for k := range e.joinCols {
		if strings.ToLower(k[0]) == lower {
			delete(e.joinCols, k)
		}
	}
}

// Catalog exposes the table catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Optimizer exposes the optimizer (for injections and estimates).
func (e *Engine) Optimizer() *opt.Optimizer { return e.opt }

// FeedbackCache exposes the (expression, cardinality, DPC) store.
func (e *Engine) FeedbackCache() *core.FeedbackCache { return e.cache }

// Pool exposes the buffer pool (for cache control in experiments).
func (e *Engine) Pool() *storage.BufferPool { return e.pool }

// Analyze builds optimizer statistics for the named tables.
func (e *Engine) Analyze(tables ...string) error {
	for _, t := range tables {
		if err := e.opt.AnalyzeTable(t); err != nil {
			return err
		}
	}
	return nil
}

// ParseQuery parses SQL text against the catalog.
func (e *Engine) ParseQuery(src string) (*opt.Query, error) {
	return sql.Parse(e.cat, src)
}

// PlanQuery optimizes a parsed query.
func (e *Engine) PlanQuery(q *opt.Query) (plan.Node, error) {
	return e.opt.Optimize(q)
}

// RunOptions control one execution.
type RunOptions struct {
	// Monitor configures explicit DPC monitoring.
	Monitor *exec.MonitorConfig
	// MonitorAll auto-derives monitor requests from the query: every
	// single-column sub-predicate with a matching index, the full
	// predicate, and — for joins — the inner join DPC. This is the "give
	// me everything a DBA would look at" mode.
	MonitorAll bool
	// SampleFraction overrides the DPSample fraction for MonitorAll.
	SampleFraction float64
	// WarmCache skips the cold-cache reset before execution. The paper
	// measures cold (§V-B); warm runs are for overhead experiments.
	WarmCache bool
	// Timeout bounds the query's wall-clock execution time. Zero means no
	// limit. It composes with any deadline already on the caller's context
	// (whichever fires first wins); on expiry the query aborts with a
	// *QueryError of kind ErrKindTimeout.
	Timeout time.Duration
	// FailMonitors is a fault-injection hook for tests: monitors whose
	// mechanism name appears here panic on first observation, exercising
	// the quarantine path. Only meaningful with MonitorAll.
	FailMonitors []string
	// Parallelism is the intra-query parallel degree: full scans (and
	// hash-join probes over them) split into that many partitioned workers.
	// 0 or 1 runs serially; values above GOMAXPROCS are clamped to it.
	// Monitored feedback (DPC, cardinalities, quarantine state) is
	// identical to a serial run; only row order of unsorted results may
	// differ.
	Parallelism int
	// MaxConcurrent overrides the engine's admission limit for this call
	// (Config.MaxConcurrent). 0 inherits the engine limit; with both zero no
	// admission control applies.
	MaxConcurrent int
	// MemBudget bounds the bytes this query's blocking operators may
	// materialize (hash-join build sides, sorts, group states, parallel-scan
	// arenas, RID sets). Exceeding it aborts the query with a *QueryError of
	// kind ErrKindMemory. 0 means unlimited.
	MemBudget int64
	// ShedLevel degrades DPC monitoring along the mechanism lattice to cut
	// observation overhead under load: 0 full monitoring; 1 exact grouped
	// counting degrades to page sampling and sampling fractions thin 4x;
	// 2 degrades further to linear counting, thins 16x, and skips join
	// bit-vector filters; 3 plants nothing. Shed results are marked Degraded
	// and never reach the feedback cache. Applies to MonitorAll; explicit
	// Monitor configs carry their own ShedLevel.
	ShedLevel int
	// ShedUnderPressure derives the shed level from the admission queue at
	// submission time (deeper queue, higher level), taking the maximum of it
	// and ShedLevel. Requires an engine-level Config.MaxConcurrent.
	ShedUnderPressure bool
	// MonitorOverheadBudget bounds the wall-clock observation time of each
	// planted monitor; a monitor exceeding it disables itself mid-query and
	// reports a shed (Degraded) result. 0 means unbounded.
	MonitorOverheadBudget time.Duration
	// Vectorized selects the execution path. The default (VecDefault) runs
	// batch-at-a-time with selection vectors; VecOff forces the serial
	// row-at-a-time path — the escape hatch and the parity baseline the
	// chaos tests compare against. Results, DPC feedback, and deterministic
	// runtime stats are identical across the two paths; only the batch
	// counters (BatchesProcessed, VectorizedOps) differ.
	Vectorized VecMode
	// Trace records a per-query span tree (operator open/next/close phases,
	// parallel partitions, admission wait, storage events) into
	// Result.Trace. Off by default; the disabled path costs one nil check
	// per emission site. Tracing never changes results, DPC feedback, or
	// the statistics document — only Result.Trace and the traced-only
	// OperatorStats fields (Wall, Calls) are populated.
	Trace bool
	// TraceCapacity overrides the trace buffer size in spans for this query
	// (0 inherits Config.TraceSpanCapacity, then trace.DefaultCapacity).
	TraceCapacity int
}

// VecMode selects between the vectorized (batch-at-a-time) and the
// row-at-a-time execution paths.
type VecMode int

const (
	// VecDefault is the zero value: vectorized execution.
	VecDefault VecMode = iota
	// VecOff forces row-at-a-time execution.
	VecOff
	// VecOn requests vectorized execution explicitly (same as VecDefault).
	VecOn
)

// vectorized reports whether the options select the batch path.
func (o *RunOptions) vectorized() bool { return o == nil || o.Vectorized != VecOff }

// traced reports whether the options request span recording.
func (o *RunOptions) traced() bool { return o != nil && o.Trace }

// traceCapacity returns the per-query span buffer override (0 = inherit).
func (o *RunOptions) traceCapacity() int {
	if o == nil {
		return 0
	}
	return o.TraceCapacity
}

// parallelDegree clamps the requested degree to [0, GOMAXPROCS].
func (o *RunOptions) parallelDegree() int {
	if o == nil || o.Parallelism <= 1 {
		return 0
	}
	if p := runtime.GOMAXPROCS(0); o.Parallelism > p {
		return p
	}
	return o.Parallelism
}

// Result is the outcome of one execution.
type Result struct {
	// Rows are the rows the plan produced.
	Rows []tuple.Row
	// Plan is the executed plan.
	Plan plan.Node
	// Query is the parsed query (nil when Execute was called directly).
	Query *opt.Query
	// DPC holds the monitored distinct page counts, with the optimizer's
	// estimates filled in.
	DPC []exec.DPCResult
	// Stats is the statistics-xml document.
	Stats exec.ExecutionStats
	// SimulatedTime = simulated I/O + simulated CPU — the "execution
	// time" of every experiment.
	SimulatedTime time.Duration
	// WallTime is the real time spent executing (for monitoring-overhead
	// measurements).
	WallTime time.Duration
	// PlanCacheHit reports whether the plan came from the engine's plan
	// cache (instantiated from a template, optimizer skipped).
	PlanCacheHit bool
	// Trace is the recorded span tree (nil unless the run was traced via
	// RunOptions.Trace or an armed slow-query log).
	Trace *trace.Trace
	// Operators is the number of operators in the executed physical plan —
	// the count Trace.Validate checks lifetime spans against.
	Operators int
}

// Query parses, optimizes, and executes SQL in one call. It is
// QueryContext with a background context.
func (e *Engine) Query(src string, opts *RunOptions) (*Result, error) {
	return e.QueryContext(context.Background(), src, opts)
}

// QueryContext parses, optimizes, and executes SQL under ctx: cancelling
// the context (or exceeding its deadline / opts.Timeout) aborts the query
// with a *QueryError. Panics anywhere in the pipeline are recovered here
// and surface the same way; the engine remains usable afterward.
func (e *Engine) QueryContext(ctx context.Context, src string, opts *RunOptions) (res *Result, err error) {
	defer recoverQueryPanic(&err)
	q, err := e.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return e.RunQueryContext(ctx, q, opts)
}

// RunQuery optimizes and executes a parsed query (background context).
func (e *Engine) RunQuery(q *opt.Query, opts *RunOptions) (*Result, error) {
	return e.RunQueryContext(context.Background(), q, opts)
}

// RunQueryContext optimizes and executes a parsed query under ctx. When the
// plan cache holds a valid template for the query's shape and selectivity
// bucket, the optimizer is skipped: the template is instantiated with the
// query's constants and executed directly.
func (e *Engine) RunQueryContext(ctx context.Context, q *opt.Query, opts *RunOptions) (res *Result, err error) {
	defer recoverQueryPanic(&err)
	node, skel, hit, err := e.planForQuery(q)
	if err != nil {
		return nil, err
	}
	var mcfg *exec.MonitorConfig
	if hit {
		mcfg = e.monitorFromSkeleton(skel, q, opts)
	} else {
		mcfg = e.monitorConfig(q, opts)
	}
	res, err = e.ExecuteContext(ctx, node, mcfg, opts)
	if err != nil {
		return nil, err
	}
	res.Query = q
	res.PlanCacheHit = hit
	res.Stats.Runtime.PlanCacheHit = hit
	if hit {
		e.met.planCacheHits.Inc()
	} else {
		e.met.planCacheMisses.Inc()
	}
	e.fillEstimates(q, res)
	return res, nil
}

// monitorConfig resolves the effective monitor configuration.
func (e *Engine) monitorConfig(q *opt.Query, opts *RunOptions) *exec.MonitorConfig {
	if opts == nil {
		return nil
	}
	if opts.Monitor != nil {
		return opts.Monitor
	}
	if !opts.MonitorAll || q == nil {
		return nil
	}
	cfg := &exec.MonitorConfig{
		SampleFraction: opts.SampleFraction,
		FailMonitors:   opts.FailMonitors,
		ShedLevel:      opts.ShedLevel,
		OverheadBudget: opts.MonitorOverheadBudget,
	}
	if opts.ShedUnderPressure {
		if p := e.gate.pressureLevel(); p > cfg.ShedLevel {
			cfg.ShedLevel = p
		}
	}
	addFor := func(table string, pred expr.Conjunction) {
		if len(pred.Atoms) == 0 {
			return
		}
		// The full predicate.
		cfg.Requests = append(cfg.Requests, exec.DPCRequest{Table: table, Pred: pred})
		// Each proper single-column sub-predicate (a candidate index's
		// view of the query).
		if len(pred.Atoms) > 1 {
			for i := range pred.Atoms {
				cfg.Requests = append(cfg.Requests, exec.DPCRequest{
					Table: table, Pred: pred.Subset(i),
				})
			}
		}
	}
	addFor(q.Table, q.Pred)
	if q.IsJoin() {
		addFor(q.Table2, q.Pred2)
		cfg.Requests = append(cfg.Requests,
			exec.DPCRequest{Table: q.Table, Join: true},
			exec.DPCRequest{Table: q.Table2, Join: true},
		)
	}
	return cfg
}

// Execute runs a physical plan (background context). The cache is cold
// unless opts.WarmCache.
func (e *Engine) Execute(node plan.Node, mcfg *exec.MonitorConfig, opts *RunOptions) (*Result, error) {
	return e.ExecuteContext(context.Background(), node, mcfg, opts)
}

// ExecuteContext runs a physical plan under goCtx. Execution errors —
// storage faults, recovered panics, cancellation — surface as *QueryError
// wrapping the cause; all operator Close paths run before it returns, so
// no page pins leak and the engine stays usable.
func (e *Engine) ExecuteContext(goCtx context.Context, node plan.Node, mcfg *exec.MonitorConfig, opts *RunOptions) (res *Result, err error) {
	// The metrics defer is registered before the panic boundary so it runs
	// after it and sees the classified error even on recovered panics.
	defer func() { e.met.noteQuery(res, err) }()
	defer recoverQueryPanic(&err)
	if goCtx == nil {
		goCtx = context.Background()
	}
	if opts != nil && opts.Timeout > 0 {
		var cancel context.CancelFunc
		goCtx, cancel = context.WithTimeout(goCtx, opts.Timeout)
		defer cancel()
	}
	if err := goCtx.Err(); err != nil {
		return nil, classifyQueryError(err)
	}
	// Tracing is on when requested explicitly or when the slow-query log is
	// armed (a slow query can only be captured if it was traced). The
	// recorder is created before admission so the queue wait falls inside
	// the trace epoch.
	var rec *trace.Recorder
	if opts.traced() || e.cfg.SlowQueryThreshold > 0 {
		capacity := opts.traceCapacity()
		if capacity <= 0 {
			capacity = e.cfg.TraceSpanCapacity
		}
		rec = trace.NewRecorder(capacity)
	}
	// Admission: queue wait counts against the query's deadline because the
	// timeout context above wraps it.
	effLimit := 0
	if opts != nil {
		effLimit = opts.MaxConcurrent
	}
	queueWait, queueDepth, err := e.gate.acquire(goCtx, effLimit)
	if err != nil {
		return nil, err
	}
	defer e.gate.release()
	if rec != nil && queueWait > 0 {
		now := rec.Now()
		start := now - queueWait
		if start < 0 {
			start = 0
		}
		rec.Emit(trace.Span{Op: trace.NoOp, Kind: trace.KindAdmission, Start: start, End: now, N: int64(queueDepth)})
	}
	if opts == nil || !opts.WarmCache {
		if err := e.pool.Reset(); err != nil {
			return nil, classifyQueryError(fmt.Errorf("pagefeedback: cold-cache reset: %w", err))
		}
	}
	ctx := exec.NewContext(e.pool)
	ctx.CPUPerRow = e.cfg.CPUPerRow
	ctx.Trace = rec
	ctx.Parallelism = opts.parallelDegree()
	if opts != nil && opts.MemBudget > 0 {
		ctx.Mem = exec.NewMemTracker(opts.MemBudget)
	}
	ctx.Vectorized = opts.vectorized()
	ctx.BindContext(goCtx)
	ex, err := exec.Build(ctx, node, mcfg)
	if err != nil {
		return nil, classifyQueryError(err)
	}
	ioBefore := e.disk.Stats()
	poolBefore := e.pool.Stats()
	start := time.Now()
	rows, err := ex.Run()
	if err != nil {
		return nil, classifyQueryError(err)
	}
	wall := time.Since(start)
	io := e.disk.Stats().Sub(ioBefore)
	poolStats := e.pool.Stats().Sub(poolBefore)

	res = &Result{
		Rows:          rows,
		Plan:          node,
		DPC:           ex.DPCResults(),
		SimulatedTime: io.SimulatedIO + ctx.SimCPU(),
		WallTime:      wall,
		Operators:     ex.OperatorCount(),
	}
	if rec != nil {
		// Storage-side events are synthesized from the stat deltas as point
		// spans: under parallelism the underlying intervals overlap
		// arbitrarily, so only the aggregates are trustworthy.
		at := rec.Now()
		if poolStats.Waits > 0 {
			rec.Emit(trace.Span{Op: trace.NoOp, Kind: trace.KindPinWait, Start: at, End: at,
				N: poolStats.Waits, Total: poolStats.WaitTime})
		}
		if io.ReadRetries > 0 {
			rec.Emit(trace.Span{Op: trace.NoOp, Kind: trace.KindReadRetry, Start: at, End: at,
				N: io.ReadRetries})
		}
		if poolStats.Prefetched > 0 {
			rec.Emit(trace.Span{Op: trace.NoOp, Kind: trace.KindPrefetch, Start: at, End: at,
				N: poolStats.Prefetched})
		}
		res.Trace = rec.Finish()
	}
	res.Stats = exec.ExecutionStats{
		Plan: ex.StatsSnapshot(),
		Runtime: exec.RuntimeStats{
			SimulatedIO:        io.SimulatedIO,
			SimulatedCPU:       ctx.SimCPU(),
			SimulatedTotal:     res.SimulatedTime,
			PhysicalReads:      io.PhysicalReads,
			RandomReads:        io.RandomReads,
			LogicalReads:       poolStats.LogicalReads,
			RowsTouched:        ctx.RowsTouched(),
			Parallelism:        ctx.Parallelism,
			PrefetchedPages:    poolStats.Prefetched,
			QueueWait:          queueWait,
			QueueDepth:         queueDepth,
			ReadRetries:        io.ReadRetries,
			PoolWaits:          poolStats.Waits,
			PoolWaitTime:       poolStats.WaitTime,
			MemPeakBytes:       ctx.Mem.Used(),
			CompiledPredicates: ctx.CompiledPredicates(),
			BatchesProcessed:   ctx.BatchesProcessed(),
			VectorizedOps:      ctx.VectorizedOps(),
		},
	}
	for _, r := range res.DPC {
		expression := r.Request.Pred.String()
		if r.Request.Join {
			expression = "<join predicate>"
		}
		if r.Degraded {
			if r.Shed {
				res.Stats.Runtime.ShedMonitors++
			} else {
				res.Stats.Runtime.QuarantinedMonitors++
			}
		}
		res.Stats.DPC = append(res.Stats.DPC, exec.PageCountXML{
			Table:      r.Request.Table,
			Expression: expression,
			Mechanism:  r.Mechanism,
			Actual:     r.DPC,
			Exact:      r.Exact,
			Degraded:   r.Degraded,
			Shed:       r.Shed,
			Reason:     r.Reason,
		})
	}
	if t := e.cfg.SlowQueryThreshold; t > 0 && wall >= t {
		e.slow.note(res, time.Now())
		e.met.slowQueries.Inc()
	}
	return res, nil
}

// fillEstimates computes the optimizer's DPC estimate for each monitored
// expression, completing the estimated-vs-actual diagnostic.
func (e *Engine) fillEstimates(q *opt.Query, res *Result) {
	for i := range res.DPC {
		r := &res.DPC[i]
		var est float64
		var err error
		if r.Request.Join {
			inner, innerCol, outerRows := e.joinSide(q, r.Request.Table)
			if innerCol != "" {
				est, err = e.opt.EstimateINLDPC(inner, innerCol, outerRows)
			}
		} else {
			est, err = e.opt.EstimateDPC(r.Request.Table, r.Request.Pred)
		}
		if err == nil && i < len(res.Stats.DPC) {
			res.Stats.DPC[i].Estimated = int64(est + 0.5)
		}
	}
}

// joinSide resolves which side of q the table plays and the outer row
// estimate for INL costing.
func (e *Engine) joinSide(q *opt.Query, inner string) (table, innerCol string, outerRows float64) {
	if !q.IsJoin() {
		return "", "", 0
	}
	if equalFold(inner, q.Table) {
		rows, _ := e.opt.EstimateCardinality(q.Table2, q.Pred2)
		return q.Table, q.JoinCol, rows
	}
	if equalFold(inner, q.Table2) {
		rows, _ := e.opt.EstimateCardinality(q.Table, q.Pred)
		return q.Table2, q.JoinCol2, rows
	}
	return "", "", 0
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i]|0x20, b[i]|0x20
		if ca != cb {
			return false
		}
	}
	return true
}

// ApplyFeedback stores every observed DPC from res in the feedback cache
// and injects it into the optimizer, so the next optimization of the same
// (or a predicate-equivalent) query uses the fed-back values — the §V
// evaluation methodology.
func (e *Engine) ApplyFeedback(res *Result) {
	for _, r := range res.DPC {
		if r.Mechanism == exec.MechUnsatisfiable || r.Degraded {
			// A quarantined monitor produced no observation; feeding its
			// zero DPC back would poison the optimizer.
			continue
		}
		if r.Request.Join {
			if res.Query != nil {
				_, innerCol, _ := e.joinSide(res.Query, r.Request.Table)
				if innerCol != "" && r.Cardinality > 0 {
					// Grow the learned join-DPC curve. The curve, not a
					// column-keyed injection, carries join feedback: an
					// injected scalar would go stale the moment the same
					// join ran at a different outer selectivity, while
					// the curve reproduces this observation exactly at
					// its own operating point and interpolates between
					// points elsewhere (§VI).
					e.opt.RecordJoinDPCObservation(r.Request.Table, innerCol, r.Cardinality, r.DPC)
					e.fmu.Lock()
					e.joinCols[[2]string{r.Request.Table, innerCol}] = true
					e.fmu.Unlock()
				}
			}
			continue
		}
		e.opt.InjectDPC(r.Request.Table, r.Request.Pred, float64(r.DPC))
		entry := core.FeedbackEntry{
			Cardinality:  r.Cardinality,
			DPC:          r.DPC,
			Mechanism:    r.Mechanism,
			Exact:        r.Exact,
			TableVersion: e.tableVersion(r.Request.Table),
		}
		e.cache.Store(r.Request.Table, r.Request.Pred, entry)
		e.track(r.Request.Table, r.Request.Pred, entry)
		// Feed the self-tuning page-count histogram when the predicate is
		// a single-column range (§VI): future queries with different
		// constants on the same column benefit without re-monitoring.
		if r.Cardinality > 0 {
			cols := r.Request.Pred.Columns()
			if len(cols) == 1 && len(r.Request.Pred.Atoms) == 1 {
				a := r.Request.Pred.Atoms[0]
				if lo, hi, ok := core.ObservationFromAtomRange(a.Op.String(), a.Val, a.Val2); ok {
					e.opt.RecordDPCObservation(r.Request.Table, cols[0], lo, hi, r.Cardinality, r.DPC)
					e.fmu.Lock()
					e.histCols[[2]string{r.Request.Table, cols[0]}] = true
					e.fmu.Unlock()
				}
			}
		}
	}
}

// InjectFromCache looks up the feedback cache for the query's predicates —
// the full conjunction and each single-atom sub-predicate, since the
// latter drive index-fetch costing — and injects any hits: reuse of
// feedback across similar queries (§II-C). It returns the number of
// injected values.
func (e *Engine) InjectFromCache(q *opt.Query) int {
	n := 0
	inject := func(table string, pred expr.Conjunction) {
		if len(pred.Atoms) == 0 {
			return
		}
		cur := e.tableVersion(table)
		use := func(p expr.Conjunction) {
			entry, ok := e.cache.Lookup(table, p)
			if !ok {
				return
			}
			if entry.TableVersion != cur {
				return // observed against different data: stale
			}
			e.opt.InjectDPC(table, p, float64(entry.DPC))
			n++
		}
		use(pred)
		if len(pred.Atoms) > 1 {
			for i := range pred.Atoms {
				use(pred.Subset(i))
			}
		}
	}
	inject(q.Table, q.Pred)
	if q.IsJoin() {
		inject(q.Table2, q.Pred2)
	}
	return n
}
